package trace

import (
	"sort"
	"time"
)

// SpanData is the immutable recorded form of a span. Start is the offset
// from the trace's wall start so exported traces are self-contained.
type SpanData struct {
	TraceID     uint64        `json:"trace_id"`
	SpanID      uint64        `json:"span_id"`
	ParentID    uint64        `json:"parent_id,omitempty"`
	Name        string        `json:"name"`
	Layer       string        `json:"layer"`
	Start       time.Duration `json:"start_ns"`
	Duration    time.Duration `json:"duration_ns"`
	SimStart    time.Duration `json:"sim_start_ns,omitempty"`
	SimDuration time.Duration `json:"sim_duration_ns,omitempty"`
	Error       string        `json:"error,omitempty"`
	Annotations []Annotation  `json:"annotations,omitempty"`
}

// End returns the span's wall end offset from the trace start.
func (s SpanData) End() time.Duration { return s.Start + s.Duration }

// Trace is one completed (or snapshot of an in-flight) trace: the root plus
// every recorded span, sorted by start offset.
type Trace struct {
	TraceID  uint64     `json:"trace_id"`
	Root     string     `json:"root"`
	Start    time.Time  `json:"start"`
	Duration time.Duration `json:"duration_ns"` // envelope: last span end
	Err      bool       `json:"err,omitempty"`
	Open     int        `json:"open_spans,omitempty"` // >0 on in-flight snapshots
	Dropped  int        `json:"dropped_spans,omitempty"`
	Spans    []SpanData `json:"spans"`
}

// RootSpan returns the root span's data, or a zero SpanData if the root has
// not ended yet (in-flight snapshots).
func (tr *Trace) RootSpan() (SpanData, bool) {
	for _, s := range tr.Spans {
		if s.ParentID == 0 {
			return s, true
		}
	}
	return SpanData{}, false
}

// HasError reports whether any span in the trace recorded an error.
func (tr *Trace) HasError() bool { return tr.Err }

// traceBuf accumulates a trace's ended spans while any span is still open.
// open counts the root plus every started child; the trace flushes to a
// ring only when the root has ended AND open reaches zero, so async work
// completing after the root still lands in the trace.
type traceBuf struct {
	traceID   uint64
	rootID    uint64
	rootName  string
	wallStart time.Time
	spans     []SpanData
	open      int
	rootEnded bool
	rootDur   time.Duration
	err       bool
	dropped   int
}

func (t *Tracer) record(wallStart time.Time, sd SpanData) {
	t.mu.Lock()
	buf := t.active[sd.TraceID]
	if buf == nil {
		// Trace already flushed (or never registered): count, don't store.
		t.spansDropped.Add(1)
		t.mu.Unlock()
		return
	}
	sd.Start = wallStart.Sub(buf.wallStart)
	if len(buf.spans) < t.maxSpans {
		buf.spans = append(buf.spans, sd)
		t.spansRecorded.Add(1)
	} else {
		buf.dropped++
		t.spansDropped.Add(1)
	}
	if sd.Error != "" {
		buf.err = true
	}
	if sd.SpanID == buf.rootID {
		buf.rootEnded = true
		buf.rootDur = sd.Duration
	}
	buf.open--
	if buf.rootEnded && buf.open <= 0 {
		t.flushLocked(buf)
	}
	t.mu.Unlock()
}

// flushLocked moves a completed traceBuf into the recent or retained ring.
// Caller holds t.mu.
func (t *Tracer) flushLocked(buf *traceBuf) {
	delete(t.active, buf.traceID)
	tr := buf.snapshot()
	tr.Open = 0
	t.tracesStored.Add(1)
	if buf.err || buf.rootDur >= t.slow {
		t.retained.push(tr)
	} else {
		t.recent.push(tr)
	}
}

func (b *traceBuf) snapshot() *Trace {
	spans := append([]SpanData(nil), b.spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	var end time.Duration
	for _, s := range spans {
		if e := s.End(); e > end {
			end = e
		}
	}
	return &Trace{
		TraceID:  b.traceID,
		Root:     b.rootName,
		Start:    b.wallStart,
		Duration: end,
		Err:      b.err,
		Open:     b.open,
		Dropped:  b.dropped,
		Spans:    spans,
	}
}

// ring is a fixed-capacity overwrite buffer of completed traces.
type ring struct {
	buf  []*Trace
	next int
	n    int
}

func newRing(capacity int) *ring { return &ring{buf: make([]*Trace, capacity)} }

func (r *ring) push(tr *Trace) {
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	r.n++
}

// snapshot returns the ring's contents oldest-first.
func (r *ring) snapshot() []*Trace {
	var out []*Trace
	start := r.next
	for i := 0; i < len(r.buf); i++ {
		if tr := r.buf[(start+i)%len(r.buf)]; tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Traces returns the recent ring's completed traces, oldest-first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recent.snapshot()
}

// Retained returns the tail-retained (error or slow) traces, oldest-first.
func (t *Tracer) Retained() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retained.snapshot()
}

// Trace looks up a completed trace by ID in both rings (retained first).
func (t *Tracer) Trace(id uint64) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.retained.snapshot() {
		if tr.TraceID == id {
			return tr
		}
	}
	for _, tr := range t.recent.snapshot() {
		if tr.TraceID == id {
			return tr
		}
	}
	return nil
}

// ActiveTraces snapshots traces still in flight (e.g. running VM
// lifecycles): the spans that have ended so far, plus the open-span count.
func (t *Tracer) ActiveTraces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.active))
	for _, buf := range t.active {
		out = append(out, buf.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TraceID < out[j].TraceID })
	return out
}

// Stats is the tracer's aggregate health, surfaced via core.Status().Trace.
type Stats struct {
	Enabled        bool
	RootsStarted   int64
	RootsSampled   int64
	SpansRecorded  int64
	SpansDropped   int64
	TracesStored   int64
	ActiveTraces   int
	RecentTraces   int
	RetainedTraces int
}

// Stats returns a consistent snapshot of the tracer's counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	active := len(t.active)
	recent := len(t.recent.snapshot())
	retained := len(t.retained.snapshot())
	t.mu.Unlock()
	return Stats{
		Enabled:        t.enabled.Load(),
		RootsStarted:   t.rootsStarted.Load(),
		RootsSampled:   t.rootsSampled.Load(),
		SpansRecorded:  t.spansRecorded.Load(),
		SpansDropped:   t.spansDropped.Load(),
		TracesStored:   t.tracesStored.Load(),
		ActiveTraces:   active,
		RecentTraces:   recent,
		RetainedTraces: retained,
	}
}
