package trace

import (
	"sort"
	"time"
)

// Per-tenant trace attribution: the web middleware annotates every root
// span with the authenticated tenant, so a stored trace set can be sliced
// by who caused the work — which tenant's requests spent how long in which
// layer.

// DefaultTenant labels traces whose root carries no tenant annotation
// (session users of the default tenant, infrastructure work).
const DefaultTenant = "default"

// TenantOf returns the trace's tenant: the root span's "tenant" annotation,
// DefaultTenant when absent.
func TenantOf(tr *Trace) string {
	root, ok := tr.RootSpan()
	if !ok {
		return DefaultTenant
	}
	for _, a := range root.Annotations {
		if a.Key == "tenant" {
			return a.Value
		}
	}
	return DefaultTenant
}

// TenantSummary aggregates critical-path attribution over one tenant's
// traces.
type TenantSummary struct {
	Tenant string
	// Traces / Errors count the group's members and how many recorded an
	// error anywhere in the trace.
	Traces, Errors int
	// Total is the summed critical-path time; Layers splits it per layer,
	// largest first.
	Total  int64 // nanoseconds, summed across traces
	Layers []LayerTime
}

// SummarizeByTenant groups traces by their root's tenant annotation and
// sums per-layer critical-path time within each group. Groups are ordered
// by total time descending (the noisiest tenant first), ties by name.
func SummarizeByTenant(traces []*Trace) []TenantSummary {
	type agg struct {
		sum    *TenantSummary
		layers map[string]int64
	}
	groups := map[string]*agg{}
	for _, tr := range traces {
		name := TenantOf(tr)
		g := groups[name]
		if g == nil {
			g = &agg{sum: &TenantSummary{Tenant: name}, layers: map[string]int64{}}
			groups[name] = g
		}
		g.sum.Traces++
		if tr.HasError() {
			g.sum.Errors++
		}
		ps := Summarize(tr)
		g.sum.Total += int64(ps.Total)
		for _, lt := range ps.Layers {
			g.layers[lt.Layer] += int64(lt.Time)
		}
	}
	out := make([]TenantSummary, 0, len(groups))
	for _, g := range groups {
		for l, d := range g.layers {
			g.sum.Layers = append(g.sum.Layers, LayerTime{Layer: l, Time: time.Duration(d)})
		}
		sort.Slice(g.sum.Layers, func(i, j int) bool {
			if g.sum.Layers[i].Time != g.sum.Layers[j].Time {
				return g.sum.Layers[i].Time > g.sum.Layers[j].Time
			}
			return g.sum.Layers[i].Layer < g.sum.Layers[j].Layer
		})
		out = append(out, *g.sum)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}
