// Package trace is the reproduction's distributed-tracing subsystem: a
// Tracer/Span model wired through every layer of the stack (web middleware,
// the async transcode queue, the conversion farm, HDFS block I/O, MapReduce
// attempts, and nebula VM lifecycles).
//
// Spans carry both clock domains the system runs in: wall time (what an
// operator's stopwatch sees) and simulated time (the nebula/mapred virtual
// clock). Parent/child linkage crosses goroutine and layer boundaries via
// context.Context; layers that cannot thread a context (hot per-block or
// per-GOP loops) link explicitly with (*Span).StartChild.
//
// Sampling is deterministic: a seeded splitmix64 hash of the root-span
// sequence number decides head-sampling, so the same seed reproduces the
// same set of sampled requests. Error or slow traces are tail-retained in a
// separate ring so the interesting traces survive even at low sample rates.
//
// The disabled path is zero-alloc: StartSpan on a disabled Tracer returns
// the context unchanged and a nil *Span, and every Span method is nil-safe,
// so instrumentation can stay in place permanently (the tier-1 alloccheck
// gate enforces 0 allocs/op on this path).
package trace

import (
	"context"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Tracer. The zero value with Enabled=false is a valid
// no-op tracer; New applies defaults for the rest.
type Options struct {
	// Enabled arms the tracer. When false every StartSpan returns the
	// context unchanged and a nil span (zero allocations).
	Enabled bool
	// SampleRate is the head-sampling probability for new root spans in
	// [0,1]. 0 means "unset" and defaults to 1 (sample everything);
	// error/slow traces are tail-retained regardless.
	SampleRate float64
	// SlowThreshold marks a trace slow (and therefore tail-retained) when
	// the root span's wall duration meets it. Default 250ms.
	SlowThreshold time.Duration
	// Capacity bounds the recent-trace ring. Default 256.
	Capacity int
	// RetainedCapacity bounds the error/slow ring. Default 64.
	RetainedCapacity int
	// MaxSpansPerTrace caps recorded spans per trace; excess spans are
	// counted as dropped rather than stored. Default 512.
	MaxSpansPerTrace int
	// Seed drives both trace-ID generation and the deterministic sampling
	// decision. Default 1.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.SampleRate <= 0 {
		o.SampleRate = 1
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.RetainedCapacity <= 0 {
		o.RetainedCapacity = 64
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Tracer owns the sampling decision and the bounded trace store. A nil
// *Tracer is valid and permanently disabled.
type Tracer struct {
	enabled   atomic.Bool
	sampleAll bool
	threshold uint64 // sample when hash <= threshold
	seed      uint64
	slow      time.Duration
	maxSpans  int

	rootSeq atomic.Uint64 // root ordinal, input to the sampling hash
	idSeq   atomic.Uint64 // span-ID source

	rootsStarted  atomic.Int64
	rootsSampled  atomic.Int64
	spansRecorded atomic.Int64
	spansDropped  atomic.Int64
	tracesStored  atomic.Int64

	mu       sync.Mutex
	active   map[uint64]*traceBuf
	recent   *ring
	retained *ring
}

// New builds a Tracer from opts. The returned tracer is always usable; with
// Enabled=false it is a zero-alloc no-op until SetEnabled(true).
func New(opts Options) *Tracer {
	opts = opts.withDefaults()
	t := &Tracer{
		sampleAll: opts.SampleRate >= 1,
		threshold: uint64(opts.SampleRate * math.MaxUint64),
		seed:      opts.Seed,
		slow:      opts.SlowThreshold,
		maxSpans:  opts.MaxSpansPerTrace,
		active:    make(map[uint64]*traceBuf),
		recent:    newRing(opts.Capacity),
		retained:  newRing(opts.RetainedCapacity),
	}
	t.enabled.Store(opts.Enabled)
	return t
}

// SetEnabled flips tracing at runtime. Traces already in flight finish
// recording; new roots start (or stop) being sampled immediately.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether new root spans may be sampled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// splitmix64 is the finalizer from Vigna's SplitMix64 generator — a cheap,
// well-distributed 64-bit mix used for both sampling and trace IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) sampled(n uint64) bool {
	if t.sampleAll {
		return true
	}
	return splitmix64(t.seed^(n*0x9e3779b97f4a7c15)) <= t.threshold
}

func (t *Tracer) newTraceID(n uint64) uint64 {
	id := splitmix64(t.seed + n)
	if id == 0 {
		id = 1
	}
	return id
}

// ctxKey keys the current span in a context.Context.
type ctxKey struct{}

// notSampled marks a context whose root was head-sampled out: children see
// it and short-circuit instead of starting fresh roots mid-request. Its
// tracer is nil so every method on it is a no-op.
var notSampled = &Span{}

// FromContext returns the current recording span, or nil if the context
// carries none (or carries the not-sampled sentinel).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	if sp == nil || sp.tracer == nil {
		return nil
	}
	return sp
}

// ContextWith returns ctx carrying sp as the current span. A nil sp returns
// ctx unchanged.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Reparent copies the span linkage (including the not-sampled marker) from
// `from` onto `base`. This is the async-boundary helper: a queue worker runs
// on the queue's base context (its own cancellation lifetime) while staying
// causally linked to the request that enqueued the job.
func Reparent(base, from context.Context) context.Context {
	if v := from.Value(ctxKey{}); v != nil {
		return context.WithValue(base, ctxKey{}, v.(*Span))
	}
	return base
}

// StartSpan starts a span named name under the span in ctx, or a new
// (sampling-decided) root when ctx carries none. It returns ctx carrying the
// new span. On a nil/disabled tracer — or under an unsampled root — it
// returns ctx unchanged and a nil span; all Span methods are nil-safe so
// callers never branch.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	if v := ctx.Value(ctxKey{}); v != nil {
		parent := v.(*Span)
		if parent.tracer == nil { // under an unsampled root
			return ctx, nil
		}
		sp := parent.StartChild(name)
		if sp == nil {
			return ctx, nil
		}
		return context.WithValue(ctx, ctxKey{}, sp), sp
	}
	sp := t.startRoot(name, false)
	if sp == nil {
		// Unsampled root: plant the sentinel so descendants short-circuit.
		return context.WithValue(ctx, ctxKey{}, notSampled), nil
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// StartRoot starts an always-sampled root span outside any context — used
// for low-volume long-lived operations like VM lifecycles, where sampling
// out would lose the only trace of the object. Returns nil when disabled.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return t.startRoot(name, true)
}

func (t *Tracer) startRoot(name string, force bool) *Span {
	n := t.rootSeq.Add(1)
	t.rootsStarted.Add(1)
	if !force && !t.sampled(n) {
		return nil
	}
	t.rootsSampled.Add(1)
	sp := &Span{
		tracer:    t,
		traceID:   t.newTraceID(n),
		spanID:    t.idSeq.Add(1),
		name:      name,
		wallStart: time.Now(),
	}
	t.mu.Lock()
	t.active[sp.traceID] = &traceBuf{
		traceID:   sp.traceID,
		rootID:    sp.spanID,
		rootName:  name,
		wallStart: sp.wallStart,
		open:      1,
	}
	t.mu.Unlock()
	return sp
}

// Span is one timed operation in a trace. A nil *Span is a valid no-op; so
// is a span whose tracer is nil (the not-sampled sentinel). Spans may be
// annotated and ended from a different goroutine than the one that started
// them.
type Span struct {
	tracer    *Tracer
	traceID   uint64
	spanID    uint64
	parentID  uint64
	name      string
	wallStart time.Time

	mu          sync.Mutex
	simStart    time.Duration
	simDur      time.Duration
	simSet      bool
	annotations []Annotation
	errMsg      string
	ended       bool
}

// Annotation is one key/value note on a span.
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Recording reports whether the span actually records (non-nil, sampled).
func (s *Span) Recording() bool { return s != nil && s.tracer != nil }

// TraceID returns the span's trace ID, or 0 for a no-op span — making it
// directly usable as a histogram exemplar (0 means "no exemplar").
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's ID, or 0 for a no-op span.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// Name returns the span's name ("" for a no-op span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild starts a child span. This is the explicit-linkage path for hot
// loops that do not thread a context. Returns nil on a no-op receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	t := s.tracer
	c := &Span{
		tracer:    t,
		traceID:   s.traceID,
		spanID:    t.idSeq.Add(1),
		parentID:  s.spanID,
		name:      name,
		wallStart: time.Now(),
	}
	t.mu.Lock()
	if buf := t.active[s.traceID]; buf != nil {
		buf.open++
	}
	t.mu.Unlock()
	return c
}

// Hold marks the span's trace as having async work in flight that has not
// started its span yet (a queued job). The trace will not flush — even after
// every started span, root included, has ended — until the matching Release.
// Call it from the enqueueing goroutine while the span is still open;
// without it, a root that ends before the worker dequeues would flush the
// trace and the worker's spans would be dropped.
func (s *Span) Hold() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if buf := t.active[s.traceID]; buf != nil {
		buf.open++
	}
	t.mu.Unlock()
}

// Release undoes Hold, flushing the trace if this was the last open
// reference. Safe to call after the worker's spans have ended.
func (s *Span) Release() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if buf := t.active[s.traceID]; buf != nil {
		buf.open--
		if buf.rootEnded && buf.open <= 0 {
			t.flushLocked(buf)
		}
	}
	t.mu.Unlock()
}

// Annotate attaches a key/value note to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil || s.tracer == nil {
		return
	}
	s.mu.Lock()
	s.annotations = append(s.annotations, Annotation{Key: key, Value: value})
	s.mu.Unlock()
}

// AnnotateInt is Annotate for integer values without caller-side formatting.
func (s *Span) AnnotateInt(key string, v int64) {
	if s == nil || s.tracer == nil {
		return
	}
	s.Annotate(key, strconv.FormatInt(v, 10))
}

// SetError marks the span (and therefore its trace) as failed. The trace is
// tail-retained regardless of the root's duration.
func (s *Span) SetError(err error) {
	if s == nil || s.tracer == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// SetSimStart stamps the span's start in the simulated-time domain. Layers
// that run on a virtual clock (nebula, mapred's modelled schedule) call this
// explicitly — the tracer never reads the sim clock itself, so spans can be
// created while holding the clock owner's lock.
func (s *Span) SetSimStart(d time.Duration) {
	if s == nil || s.tracer == nil {
		return
	}
	s.mu.Lock()
	s.simStart = d
	s.simSet = true
	s.mu.Unlock()
}

// EndAtSim ends the span, stamping the simulated-time domain end at d (the
// sim duration becomes d - SetSimStart's value).
func (s *Span) EndAtSim(d time.Duration) {
	if s == nil || s.tracer == nil {
		return
	}
	s.mu.Lock()
	if s.simSet && d >= s.simStart {
		s.simDur = d - s.simStart
	}
	s.mu.Unlock()
	s.End()
}

// End completes the span and records it into its trace. Ending the root
// does not flush the trace until every child has ended, so spans completing
// after the root (async queue work, prefetches) still land in the trace.
// End is idempotent.
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	wallDur := time.Since(s.wallStart)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		TraceID:     s.traceID,
		SpanID:      s.spanID,
		ParentID:    s.parentID,
		Name:        s.name,
		Layer:       layerOf(s.name),
		Duration:    wallDur,
		SimStart:    s.simStart,
		SimDuration: s.simDur,
		Error:       s.errMsg,
		Annotations: s.annotations,
	}
	s.mu.Unlock()
	s.tracer.record(s.wallStart, sd)
}

// layerOf maps a span name to its layer: the prefix before the first dot
// ("hdfs.read_block" → "hdfs").
func layerOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}
