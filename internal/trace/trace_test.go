package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func alwaysOn() *Tracer {
	return New(Options{Enabled: true, SampleRate: 1, SlowThreshold: time.Hour})
}

func TestSpanTreeAndFlush(t *testing.T) {
	tr := alwaysOn()
	ctx, root := tr.StartSpan(context.Background(), "web.upload")
	if root == nil {
		t.Fatal("always-on tracer returned nil root")
	}
	cctx, child := tr.StartSpan(ctx, "farm.convert")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace ID %x != root %x", child.TraceID(), root.TraceID())
	}
	g := FromContext(cctx).StartChild("hdfs.write_block")
	g.AnnotateInt("block", 7)
	g.End()
	child.End()

	// Root still open: trace must not be in the store yet.
	if got := tr.Trace(root.TraceID()); got != nil {
		t.Fatal("trace flushed before root ended")
	}
	root.End()
	got := tr.Trace(root.TraceID())
	if got == nil {
		t.Fatal("trace not stored after root ended")
	}
	if len(got.Spans) != 3 {
		t.Fatalf("stored %d spans, want 3", len(got.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if byName["farm.convert"].ParentID != root.SpanID() {
		t.Fatal("farm.convert not parented to root")
	}
	if byName["hdfs.write_block"].ParentID != byName["farm.convert"].SpanID {
		t.Fatal("hdfs.write_block not parented to farm.convert")
	}
	if byName["hdfs.write_block"].Layer != "hdfs" {
		t.Fatalf("layer %q, want hdfs", byName["hdfs.write_block"].Layer)
	}
}

// A child ending after the root (the async transcode queue) must still land
// in the trace: flush waits for the open-span count to reach zero.
func TestAsyncChildCompletesTrace(t *testing.T) {
	tr := alwaysOn()
	ctx, root := tr.StartSpan(context.Background(), "web.upload")

	done := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, sp := tr.StartSpan(Reparent(context.Background(), ctx), "queue.job")
		close(started)
		<-done
		sp.End()
	}()
	<-started
	root.End()
	if tr.Trace(root.TraceID()) != nil {
		t.Fatal("trace flushed while queue.job still open")
	}
	close(done)
	deadline := time.Now().Add(2 * time.Second)
	for tr.Trace(root.TraceID()) == nil {
		if time.Now().After(deadline) {
			t.Fatal("trace never flushed after async child ended")
		}
		time.Sleep(time.Millisecond)
	}
	got := tr.Trace(root.TraceID())
	if len(got.Spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(got.Spans))
	}
}

func TestSamplingDeterministicAndSentinel(t *testing.T) {
	decide := func(seed uint64) []bool {
		tr := New(Options{Enabled: true, SampleRate: 0.3, Seed: seed})
		var out []bool
		for i := 0; i < 64; i++ {
			ctx, sp := tr.StartSpan(context.Background(), "web.stream")
			out = append(out, sp != nil)
			// Children under an unsampled root must not start new roots.
			_, child := tr.StartSpan(ctx, "hdfs.read_block")
			if sp == nil && child != nil {
				t.Fatal("child span recorded under unsampled root")
			}
			if sp == nil && FromContext(ctx) != nil {
				t.Fatal("FromContext returned the not-sampled sentinel")
			}
			child.End()
			sp.End()
		}
		return out
	}
	a, b := decide(7), decide(7)
	sampledCount := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic for equal seeds")
		}
		if a[i] {
			sampledCount++
		}
	}
	if sampledCount == 0 || sampledCount == 64 {
		t.Fatalf("rate 0.3 sampled %d/64 roots, want a strict subset", sampledCount)
	}
	st := New(Options{Enabled: true, SampleRate: 0.3, Seed: 7}).Stats()
	_ = st
}

func TestTailRetention(t *testing.T) {
	tr := New(Options{Enabled: true, SampleRate: 1, SlowThreshold: time.Hour})
	// Error trace → retained ring.
	_, sp := tr.StartSpan(context.Background(), "web.stream")
	sp.SetError(errors.New("boom"))
	sp.End()
	// Clean fast trace → recent ring.
	_, ok := tr.StartSpan(context.Background(), "web.home")
	ok.End()

	ret, rec := tr.Retained(), tr.Traces()
	if len(ret) != 1 || !ret[0].Err || ret[0].Root != "web.stream" {
		t.Fatalf("retained ring = %+v, want the error trace", ret)
	}
	if len(rec) != 1 || rec[0].Root != "web.home" {
		t.Fatalf("recent ring = %+v, want the clean trace", rec)
	}

	// Slow trace → retained even without an error.
	slow := New(Options{Enabled: true, SampleRate: 1, SlowThreshold: time.Nanosecond})
	_, sp2 := slow.StartSpan(context.Background(), "web.upload")
	time.Sleep(50 * time.Microsecond)
	sp2.End()
	if got := slow.Retained(); len(got) != 1 {
		t.Fatalf("slow trace not tail-retained: %+v", got)
	}
}

func TestRingBoundedAndSpanCap(t *testing.T) {
	tr := New(Options{Enabled: true, SampleRate: 1, Capacity: 4, MaxSpansPerTrace: 2, SlowThreshold: time.Hour})
	for i := 0; i < 10; i++ {
		_, sp := tr.StartSpan(context.Background(), fmt.Sprintf("web.r%d", i))
		for j := 0; j < 5; j++ {
			sp.StartChild("hdfs.read_block").End()
		}
		sp.End()
	}
	recent := tr.Traces()
	if len(recent) != 4 {
		t.Fatalf("recent ring holds %d traces, want capacity 4", len(recent))
	}
	if recent[len(recent)-1].Root != "web.r9" {
		t.Fatalf("newest trace is %s, want web.r9", recent[len(recent)-1].Root)
	}
	for _, g := range recent {
		if len(g.Spans) > 2 {
			t.Fatalf("trace %s stored %d spans, want ≤ MaxSpansPerTrace=2", g.Root, len(g.Spans))
		}
		if g.Dropped == 0 {
			t.Fatalf("trace %s dropped none, want drop accounting", g.Root)
		}
	}
	if tr.Stats().SpansDropped == 0 {
		t.Fatal("tracer-level dropped counter never moved")
	}
}

func TestSimClockDomain(t *testing.T) {
	tr := alwaysOn()
	root := tr.StartRoot("nebula.vm")
	root.SetSimStart(10 * time.Second)
	st := root.StartChild("nebula.boot")
	st.SetSimStart(12 * time.Second)
	st.EndAtSim(15 * time.Second)
	root.EndAtSim(40 * time.Second)
	got := tr.Trace(root.TraceID())
	if got == nil {
		t.Fatal("VM trace not stored")
	}
	byName := map[string]SpanData{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if d := byName["nebula.boot"].SimDuration; d != 3*time.Second {
		t.Fatalf("boot sim duration %v, want 3s", d)
	}
	if d := byName["nebula.vm"].SimDuration; d != 30*time.Second {
		t.Fatalf("vm sim duration %v, want 30s", d)
	}
	if byName["nebula.boot"].SimStart != 12*time.Second {
		t.Fatalf("boot sim start %v, want 12s", byName["nebula.boot"].SimStart)
	}
}

func TestActiveTracesSnapshot(t *testing.T) {
	tr := alwaysOn()
	root := tr.StartRoot("nebula.vm")
	child := root.StartChild("nebula.pending")
	child.End()
	acts := tr.ActiveTraces()
	if len(acts) != 1 || acts[0].Open != 1 {
		t.Fatalf("active snapshot = %+v, want one trace with 1 open span", acts)
	}
	if len(acts[0].Spans) != 1 || acts[0].Spans[0].Name != "nebula.pending" {
		t.Fatalf("active snapshot spans = %+v", acts[0].Spans)
	}
	root.End()
	if len(tr.ActiveTraces()) != 0 {
		t.Fatal("trace still active after root+children ended")
	}
}

func TestCriticalPathAttribution(t *testing.T) {
	// Hand-built trace: root [0,100ms] with children a [10,40] and
	// b [50,90]; a has grandchild g [20,35]. Expected self-times:
	// root 0-10 + 40-50 + 90-100 = 30ms; a 10-20 + 35-40 = 15ms;
	// g 15ms; b 40ms.
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := &Trace{
		TraceID: 1, Root: "web.upload", Duration: ms(100),
		Spans: []SpanData{
			{TraceID: 1, SpanID: 1, Name: "web.upload", Layer: "web", Start: 0, Duration: ms(100)},
			{TraceID: 1, SpanID: 2, ParentID: 1, Name: "farm.convert", Layer: "farm", Start: ms(10), Duration: ms(30)},
			{TraceID: 1, SpanID: 3, ParentID: 2, Name: "video.gop", Layer: "video", Start: ms(20), Duration: ms(15)},
			{TraceID: 1, SpanID: 4, ParentID: 1, Name: "hdfs.write_file", Layer: "hdfs", Start: ms(50), Duration: ms(40)},
		},
	}
	sum := Summarize(tr)
	if sum.Total != ms(100) {
		t.Fatalf("total %v, want 100ms", sum.Total)
	}
	want := map[string]time.Duration{"web": ms(30), "farm": ms(15), "video": ms(15), "hdfs": ms(40)}
	got := map[string]time.Duration{}
	for _, l := range sum.Layers {
		got[l.Layer] = l.Time
	}
	for layer, d := range want {
		if got[layer] != d {
			t.Fatalf("layer %s attributed %v, want %v (all: %v)", layer, got[layer], d, got)
		}
	}
	if sum.RootSelf != ms(30) {
		t.Fatalf("root self %v, want 30ms", sum.RootSelf)
	}
	if sum.Coverage < 0.69 || sum.Coverage > 0.71 {
		t.Fatalf("coverage %.2f, want 0.70", sum.Coverage)
	}
	// The whole window is attributed exactly once: steps tile [0,100ms].
	var covered time.Duration
	for _, st := range sum.Steps {
		covered += st.End - st.Start
	}
	if covered != ms(100) {
		t.Fatalf("steps cover %v, want exactly 100ms", covered)
	}
}

// An async child that outlives its parent extends the path window instead
// of being dropped (the queue.job case).
func TestCriticalPathAsyncChild(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := &Trace{
		TraceID: 2, Root: "web.upload", Duration: ms(120),
		Spans: []SpanData{
			{TraceID: 2, SpanID: 1, Name: "web.upload", Layer: "web", Start: 0, Duration: ms(20)},
			{TraceID: 2, SpanID: 2, ParentID: 1, Name: "queue.job", Layer: "queue", Start: ms(10), Duration: ms(110)},
		},
	}
	sum := Summarize(tr)
	if sum.Total != ms(120) {
		t.Fatalf("total %v, want the async-extended 120ms window", sum.Total)
	}
	got := map[string]time.Duration{}
	for _, l := range sum.Layers {
		got[l.Layer] = l.Time
	}
	if got["queue"] != ms(110) || got["web"] != ms(10) {
		t.Fatalf("attribution %v, want queue=110ms web=10ms", got)
	}
}

func TestExportersValidJSON(t *testing.T) {
	tr := alwaysOn()
	ctx, root := tr.StartSpan(context.Background(), "web.upload")
	_, c := tr.StartSpan(ctx, "hdfs.write_file")
	c.Annotate("path", "videos/1.vcf")
	c.SetError(errors.New("disk full"))
	c.End()
	root.End()

	traces := tr.Retained()
	if len(traces) != 1 {
		t.Fatalf("want the error trace retained, got %d", len(traces))
	}
	native, err := ExportJSON(traces)
	if err != nil {
		t.Fatal(err)
	}
	var back []Trace
	if err := json.Unmarshal(native, &back); err != nil {
		t.Fatalf("native export does not round-trip: %v", err)
	}
	if len(back) != 1 || len(back[0].Spans) != 2 {
		t.Fatalf("round-tripped %d traces / %d spans", len(back), len(back[0].Spans))
	}

	chrome, err := ExportChrome(traces)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			if e["name"] == "hdfs.write_file" {
				args := e["args"].(map[string]any)
				if args["error"] != "disk full" || args["path"] != "videos/1.vcf" {
					t.Fatalf("chrome args missing error/annotation: %v", args)
				}
			}
		case "M":
			meta++
		}
	}
	if complete != 2 || meta < 3 {
		t.Fatalf("chrome export has %d X events / %d M events, want 2 / ≥3", complete, meta)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := New(Options{Enabled: true, SampleRate: 0.5, Capacity: 8, SlowThreshold: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "web.stream")
				child := FromContext(ctx).StartChild("hdfs.read_block")
				child.AnnotateInt("block", int64(i))
				child.End()
				sp.End()
				tr.Stats()
				if i%10 == 0 {
					tr.Traces()
					tr.ActiveTraces()
				}
			}
		}(g)
	}
	wg.Wait()
	st := tr.Stats()
	if st.RootsStarted != 400 {
		t.Fatalf("roots started %d, want 400", st.RootsStarted)
	}
	if st.ActiveTraces != 0 {
		t.Fatalf("%d traces leaked in the active map", st.ActiveTraces)
	}
}

func TestSetEnabledRuntime(t *testing.T) {
	tr := New(Options{Enabled: false})
	if _, sp := tr.StartSpan(context.Background(), "web.home"); sp != nil {
		t.Fatal("disabled tracer produced a span")
	}
	tr.SetEnabled(true)
	_, sp := tr.StartSpan(context.Background(), "web.home")
	if sp == nil {
		t.Fatal("enabled tracer produced no span")
	}
	sp.End()
	if !tr.Stats().Enabled || tr.Stats().TracesStored != 1 {
		t.Fatalf("stats after enable: %+v", tr.Stats())
	}
}
