package video

import (
	"testing"
)

// Allocation regression gates for the split/transcode/merge hot path
// (make tier1 runs these via the alloccheck target). The invariant is that
// allocations are bounded per call — pre-sized output buffers and in-place
// GOP rewriting — rather than scaling with GOP count: a 10× longer video
// must not cost meaningfully more allocations.

func allocsFor(t *testing.T, f func()) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, f)
}

func TestAllocTranscodeBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	short, _ := Generate(srcSpec(), 30, 1) // 15 GOPs
	long, _ := Generate(srcSpec(), 300, 1) // 150 GOPs
	run := func(data []byte) float64 {
		return allocsFor(t, func() {
			if _, err := (Transcoder{}).Convert(data, dstSpec()); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := run(short), run(long)
	if b > a+8 {
		t.Fatalf("Convert allocations scale with GOP count: %.0f for 15 GOPs, %.0f for 150", a, b)
	}
	if a > 40 {
		t.Fatalf("Convert allocates %.0f times per call, want bounded small constant", a)
	}
}

func TestAllocSplitBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	short, _ := Generate(srcSpec(), 30, 2)
	long, _ := Generate(srcSpec(), 300, 2)
	run := func(data []byte) float64 {
		return allocsFor(t, func() {
			if _, err := Split(data, 8); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := run(short), run(long)
	// Split allocates per segment (8 here), never per GOP.
	if b > a+8 {
		t.Fatalf("Split allocations scale with GOP count: %.0f vs %.0f", a, b)
	}
	if a > 80 {
		t.Fatalf("Split allocates %.0f times per call for 8 segments", a)
	}
}

func TestAllocMergeBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	shortSegs, _ := Split(mustGenerate(t, 30, 3), 8)
	longSegs, _ := Split(mustGenerate(t, 300, 3), 8)
	run := func(segs [][]byte) float64 {
		return allocsFor(t, func() {
			if _, err := Merge(segs); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := run(shortSegs), run(longSegs)
	if b > a+8 {
		t.Fatalf("Merge allocations scale with GOP count: %.0f vs %.0f", a, b)
	}
	// Per-segment metadata parses dominate (~12 allocs each); the point is
	// the count stays flat as GOPs grow.
	if a > 130 {
		t.Fatalf("Merge allocates %.0f times per call for 8 segments", a)
	}
}

func mustGenerate(t *testing.T, seconds int, seed uint64) []byte {
	t.Helper()
	data, err := Generate(srcSpec(), seconds, seed)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
