package video

import (
	"fmt"
	"testing"
)

// Conversion-path benchmarks (make bench records these with -benchmem -cpu
// 1,4 into BENCH_convert.json). BenchmarkFarmConvert/workers=N is the
// headline: real wall-clock scaling of the worker pool; run with -cpu 1,4 it
// also shows how much a single core caps the pool.

func benchSrc(b *testing.B, seconds int) []byte {
	b.Helper()
	src := Spec{Codec: MPEG4, Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 1_500_000}
	data, err := Generate(src, seconds, 2012)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func benchDst() Spec {
	return Spec{Codec: H264, Res: R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 2_000_000}
}

func BenchmarkTranscoderConvert(b *testing.B) {
	data := benchSrc(b, 120)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Transcoder{}).Convert(data, benchDst()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFarmConvert(b *testing.B) {
	data := benchSrc(b, 120)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			nodes := make([]string, workers)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("n%d", i)
			}
			farm := Farm{Nodes: nodes, SegmentsPerNode: 4}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := farm.Convert(data, benchDst()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFarmConvertMulti(b *testing.B) {
	data := benchSrc(b, 120)
	mobile := Spec{Codec: H264, Res: R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 500_000}
	farm := Farm{Nodes: []string{"n0", "n1", "n2", "n3"}}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := farm.ConvertMulti(data, benchDst(), mobile); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarmConvertPerRendition is the old ProcessUpload pattern — one
// full farm pass per rendition — kept as the baseline ConvertMulti beats.
func BenchmarkFarmConvertPerRendition(b *testing.B) {
	data := benchSrc(b, 120)
	mobile := Spec{Codec: H264, Res: R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 500_000}
	farm := Farm{Nodes: []string{"n0", "n1", "n2", "n3"}}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, target := range []Spec{benchDst(), mobile} {
			if _, err := farm.Convert(data, target); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	data := benchSrc(b, 120)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(data, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	segs, err := Split(benchSrc(b, 120), 8)
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, s := range segs {
		total += int64(len(s))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(segs); err != nil {
			b.Fatal(err)
		}
	}
}
