package video

import (
	"fmt"
	"time"
)

// Farm is the distributed conversion service of Figure 16: "we use FFmpeg to
// distribute videos to different hosts for uploading, transfer files at the
// same time and later integrate with the previous. It takes even less
// execution time than transferring files by FFmpeg on a single node."
//
// Conversion work is real (every byte is rewritten); the reported duration
// comes from a list schedule of segment tasks over node slots plus the
// scatter/gather network cost, so the speedup curve of experiment E2 is
// deterministic and hardware-independent.
type Farm struct {
	// Nodes are the worker names; one conversion slot each (FFmpeg
	// pegs a core per encode).
	Nodes []string
	// NodeSpeed is each node's compute factor (default 1.0).
	NodeSpeed float64
	// NetBandwidth models segment scatter/gather transfers in
	// bytes/second (default 1 GbE).
	NetBandwidth float64
	// SegmentsPerNode controls split granularity: the file is cut into
	// len(Nodes)*SegmentsPerNode segments (default 2 — finer grain evens
	// out the last-segment straggler).
	SegmentsPerNode int
}

func (f Farm) nodeSpeed() float64 {
	if f.NodeSpeed <= 0 {
		return 1.0
	}
	return f.NodeSpeed
}

func (f Farm) netBandwidth() float64 {
	if f.NetBandwidth <= 0 {
		return 125e6
	}
	return f.NetBandwidth
}

// SegmentStat records one converted segment.
type SegmentStat struct {
	Node    string
	GOPs    int
	InBytes int64
	Start   time.Duration
	End     time.Duration
}

// FarmResult reports a distributed conversion.
type FarmResult struct {
	Output []byte
	Info   Info
	// Duration is the modelled wall time of the parallel conversion:
	// scatter + max over nodes of compute + gather + merge.
	Duration time.Duration
	// SingleNodeDuration is the modelled time one node would need (the
	// baseline the paper compares against).
	SingleNodeDuration time.Duration
	Segments           []SegmentStat
}

// Speedup returns SingleNodeDuration / Duration.
func (r *FarmResult) Speedup() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.SingleNodeDuration) / float64(r.Duration)
}

// Convert runs the split → parallel transcode → merge pipeline.
func (f Farm) Convert(data []byte, target Spec) (*FarmResult, error) {
	if len(f.Nodes) == 0 {
		return nil, fmt.Errorf("video: farm with no nodes")
	}
	info, _, err := Parse(data)
	if err != nil {
		return nil, err
	}
	perNode := f.SegmentsPerNode
	if perNode <= 0 {
		perNode = 2
	}
	segments, err := Split(data, len(f.Nodes)*perNode)
	if err != nil {
		return nil, err
	}
	tr := Transcoder{Speed: f.nodeSpeed()}

	// One slot per node; segments scheduled longest-first onto the
	// earliest-free node (LPT list scheduling, what a work queue
	// converges to).
	type slot struct {
		name string
		free time.Duration
	}
	slots := make([]*slot, len(f.Nodes))
	for i, n := range f.Nodes {
		slots[i] = &slot{name: n}
	}
	converted := make([][]byte, len(segments))
	var stats []SegmentStat
	var makespan time.Duration
	for i, seg := range segments {
		segInfo, segGOPs, perr := Parse(seg)
		if perr != nil {
			return nil, perr
		}
		res, cerr := tr.Convert(seg, target)
		if cerr != nil {
			return nil, cerr
		}
		converted[i] = res.Output
		// Scatter this segment to the node and gather the result.
		xfer := time.Duration((float64(len(seg)) + float64(len(res.Output))) /
			f.netBandwidth() * float64(time.Second))
		cost := res.CPUTime + xfer
		s := slots[0]
		for _, cand := range slots[1:] {
			if cand.free < s.free || (cand.free == s.free && cand.name < s.name) {
				s = cand
			}
		}
		start := s.free
		s.free += cost
		if s.free > makespan {
			makespan = s.free
		}
		stats = append(stats, SegmentStat{
			Node: s.name, GOPs: len(segGOPs), InBytes: int64(len(seg)),
			Start: start, End: s.free,
		})
		_ = segInfo
	}
	merged, err := Merge(converted)
	if err != nil {
		return nil, err
	}
	outInfo, _, err := Parse(merged)
	if err != nil {
		return nil, err
	}
	// Merge cost: re-writing the output once at disk speed.
	mergeCost := time.Duration(float64(len(merged)) / 120e6 * float64(time.Second))

	single := CostSeconds(info.Spec, target, float64(info.DurationSeconds)) / f.nodeSpeed()
	return &FarmResult{
		Output:             merged,
		Info:               outInfo,
		Duration:           makespan + mergeCost,
		SingleNodeDuration: time.Duration(single * float64(time.Second)),
		Segments:           stats,
	}, nil
}
