package video

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"videocloud/internal/trace"
)

// Farm is the distributed conversion service of Figure 16: "we use FFmpeg to
// distribute videos to different hosts for uploading, transfer files at the
// same time and later integrate with the previous. It takes even less
// execution time than transferring files by FFmpeg on a single node."
//
// Conversion work is real (every byte is rewritten) and really parallel: the
// file is parsed and partitioned once, and per-node worker goroutines drain a
// longest-processing-time-ordered task queue, writing each converted GOP
// directly into a pre-sized output buffer. The *reported* duration still
// comes from a deterministic list schedule of segment tasks over node slots
// plus the scatter/gather network cost, so the speedup curve of experiment
// E2 is hardware-independent; the measured wall clock of the real parallel
// work is reported separately (FarmResult.WallDuration).
type Farm struct {
	// Nodes are the worker names; one conversion slot each (FFmpeg
	// pegs a core per encode).
	Nodes []string
	// NodeSpeed is each node's compute factor (default 1.0).
	NodeSpeed float64
	// NetBandwidth models segment scatter/gather transfers in
	// bytes/second (default 1 GbE).
	NetBandwidth float64
	// SegmentsPerNode controls split granularity: the file is cut into
	// len(Nodes)*SegmentsPerNode segments (default 2 — finer grain evens
	// out the last-segment straggler).
	SegmentsPerNode int
	// FaultHook, when non-nil, runs before each segment task; a non-nil
	// error fails the conversion and cancels in-flight workers. It exists
	// for fault injection in tests and chaos experiments (the same role
	// videodb.RawPut plays for drifted rows).
	FaultHook func(node string, segment int) error
}

// ErrNoNodes is returned by conversions on a farm with an empty node list,
// so callers can distinguish misconfiguration from conversion failure.
var ErrNoNodes = errors.New("video: farm has no conversion nodes")

// WithNodes returns a copy of the farm over a different node set, keeping
// every other parameter. Farm is a value type, so callers that manage a
// dynamic node pool (elastic scaling) snapshot a farm per conversion.
func (f Farm) WithNodes(nodes []string) Farm {
	f.Nodes = append([]string(nil), nodes...)
	return f
}

func (f Farm) nodeSpeed() float64 {
	if f.NodeSpeed <= 0 {
		return 1.0
	}
	return f.NodeSpeed
}

func (f Farm) netBandwidth() float64 {
	if f.NetBandwidth <= 0 {
		return 125e6
	}
	return f.NetBandwidth
}

// SegmentStat records one converted segment.
type SegmentStat struct {
	Node    string
	GOPs    int
	InBytes int64
	Start   time.Duration
	End     time.Duration
}

// FarmResult reports a distributed conversion.
type FarmResult struct {
	Output []byte
	Info   Info
	// Duration is the modelled wall time of the parallel conversion:
	// scatter + max over nodes of compute + gather + merge.
	Duration time.Duration
	// SingleNodeDuration is the modelled time one node would need (the
	// baseline the paper compares against).
	SingleNodeDuration time.Duration
	// WallDuration is the measured wall-clock time of the real parallel
	// conversion work. For ConvertMulti it is the wall clock of the whole
	// batch (all renditions share one worker pool).
	WallDuration time.Duration
	Segments     []SegmentStat
}

// Speedup returns SingleNodeDuration / Duration.
func (r *FarmResult) Speedup() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.SingleNodeDuration) / float64(r.Duration)
}

// segTask is one unit of farm work: convert the GOPs of one segment to one
// target rendition.
type segTask struct {
	target   int
	seg      int
	bounds   segBounds
	inBytes  int64
	outBytes int64
	// cost is the modelled compute + scatter/gather time on one node.
	cost time.Duration
}

// nodeSlot is a node's modelled timeline in the deterministic list schedule.
type nodeSlot struct {
	name string
	free time.Duration
}

// convScratch is the per-conversion scheduling state. Conversions run once
// per upload on the serving hot path, so the slices are pooled instead of
// reallocated every call.
type convScratch struct {
	tasks []segTask
	order []int
	slots []nodeSlot
}

var scratchPool = sync.Pool{New: func() any { return new(convScratch) }}

// Convert runs the split → parallel transcode → merge pipeline for one
// target rendition. The target must keep the source's GOP cadence
// (Spec.GOPSeconds): the single-split pipeline relies on input and output
// sharing GOP boundaries, so cadence-changing targets are rejected — a
// behavior change from the pre-pool farm, which re-split per rendition.
func (f Farm) Convert(data []byte, target Spec) (*FarmResult, error) {
	return f.ConvertContext(context.Background(), data, target)
}

// ConvertContext is Convert with caller-controlled cancellation.
func (f Farm) ConvertContext(ctx context.Context, data []byte, target Spec) (*FarmResult, error) {
	results, err := f.ConvertMultiContext(ctx, data, target)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ConvertMulti converts one upload to every target rendition through a
// single pass: the source is parsed and partitioned once, and all
// (segment × rendition) tasks drain through one worker pool. Results are
// returned in target order, each bit-identical to a standalone Convert.
// Like Convert, every target must keep the source's GOP cadence
// (Spec.GOPSeconds); cadence-changing targets are rejected.
func (f Farm) ConvertMulti(data []byte, targets ...Spec) ([]*FarmResult, error) {
	return f.ConvertMultiContext(context.Background(), data, targets...)
}

// ConvertMultiContext is ConvertMulti with caller-controlled cancellation.
func (f Farm) ConvertMultiContext(ctx context.Context, data []byte, targets ...Spec) ([]*FarmResult, error) {
	if len(f.Nodes) == 0 {
		return nil, ErrNoNodes
	}
	if len(targets) == 0 {
		return nil, errors.New("video: conversion with no targets")
	}
	info, gops, err := Parse(data)
	if err != nil {
		return nil, err
	}
	for _, t := range targets {
		if err := t.validate(); err != nil {
			return nil, err
		}
		if t.GOPSeconds != info.Spec.GOPSeconds {
			return nil, fmt.Errorf("video: GOP cadence change %d->%d not supported",
				info.Spec.GOPSeconds, t.GOPSeconds)
		}
	}
	perNode := f.SegmentsPerNode
	if perNode <= 0 {
		perNode = 2
	}
	bounds := partition(len(gops), len(f.Nodes)*perNode)

	// Pre-size one output buffer per rendition; workers write converted
	// GOPs directly at their computed offsets, so assembly needs no merge
	// pass and no per-GOP allocation.
	outInfos := make([]Info, len(targets))
	outs := make([][]byte, len(targets))
	headerLens := make([]int, len(targets))
	seeds := make([]uint64, len(targets))
	for ti, t := range targets {
		outInfos[ti] = Info{
			Spec: t, DurationSeconds: info.DurationSeconds,
			GOPs: info.GOPs, FirstGOP: info.FirstGOP,
		}
		buf := appendHeader(make([]byte, 0, outInfos[ti].Size()), outInfos[ti])
		headerLens[ti] = len(buf)
		outs[ti] = buf[:outInfos[ti].Size()]
		seeds[ti] = specSeed(t)
	}

	scratch := scratchPool.Get().(*convScratch)
	defer func() {
		scratch.tasks = scratch.tasks[:0]
		scratch.order = scratch.order[:0]
		scratch.slots = scratch.slots[:0]
		scratchPool.Put(scratch)
	}()
	tasks := scratch.tasks[:0]
	for ti, t := range targets {
		for si, b := range bounds {
			segInfo := segmentInfo(info, b)
			inBytes := headerSize(segInfo)
			for _, g := range gops[b.start:b.end] {
				inBytes += gopHeaderLen + g.length
			}
			outSegInfo := segInfo
			outSegInfo.Spec = t
			cpu := CostSeconds(info.Spec, t, float64(segInfo.DurationSeconds)) / f.nodeSpeed()
			xfer := (float64(inBytes) + float64(outSegInfo.Size())) / f.netBandwidth()
			tasks = append(tasks, segTask{
				target: ti, seg: si, bounds: b,
				inBytes: inBytes, outBytes: outSegInfo.Size(),
				cost: time.Duration(cpu*float64(time.Second)) +
					time.Duration(xfer*float64(time.Second)),
			})
		}
	}

	// Longest-processing-time order: workers grab the big segments first so
	// the stragglers land at the end of the schedule, which is also what
	// the deterministic model below assumes.
	order := scratch.order[:0]
	for i := range tasks {
		order = append(order, i)
	}
	lptLess := func(a, b segTask) bool {
		if a.cost != b.cost {
			return a.cost > b.cost
		}
		if a.target != b.target {
			return a.target < b.target
		}
		return a.seg < b.seg
	}
	sort.Slice(order, func(a, b int) bool { return lptLess(tasks[order[a]], tasks[order[b]]) })
	scratch.tasks, scratch.order = tasks, order

	csp := trace.FromContext(ctx).StartChild("farm.convert")
	if csp != nil {
		csp.AnnotateInt("gops", int64(len(gops)))
		csp.AnnotateInt("segments", int64(len(bounds)))
		csp.AnnotateInt("renditions", int64(len(targets)))
		csp.AnnotateInt("nodes", int64(len(f.Nodes)))
	}
	wall, err := f.runPool(ctx, csp, data, gops, tasks, order, targets, seeds, outs, headerLens)
	if err != nil {
		csp.SetError(err)
		csp.End()
		return nil, err
	}
	csp.End()

	// Deterministic modelled schedule, one per rendition, identical to what
	// a standalone Convert of that rendition reports: LPT list scheduling
	// of the rendition's segments over one slot per node.
	results := make([]*FarmResult, len(targets))
	for ti, t := range targets {
		slots := scratch.slots[:0]
		for _, n := range f.Nodes {
			slots = append(slots, nodeSlot{name: n})
		}
		stats := make([]SegmentStat, len(bounds))
		var makespan time.Duration
		for _, i := range order {
			tk := tasks[i]
			if tk.target != ti {
				continue
			}
			s := 0
			for c := 1; c < len(slots); c++ {
				if slots[c].free < slots[s].free ||
					(slots[c].free == slots[s].free && slots[c].name < slots[s].name) {
					s = c
				}
			}
			start := slots[s].free
			slots[s].free += tk.cost
			if slots[s].free > makespan {
				makespan = slots[s].free
			}
			stats[tk.seg] = SegmentStat{
				Node: slots[s].name, GOPs: tk.bounds.end - tk.bounds.start,
				InBytes: tk.inBytes, Start: start, End: slots[s].free,
			}
		}
		scratch.slots = slots[:0]
		// Merge cost: re-writing the output once at disk speed.
		mergeCost := time.Duration(float64(len(outs[ti])) / 120e6 * float64(time.Second))
		single := CostSeconds(info.Spec, t, float64(info.DurationSeconds)) / f.nodeSpeed()
		results[ti] = &FarmResult{
			Output:             outs[ti],
			Info:               outInfos[ti],
			Duration:           makespan + mergeCost,
			SingleNodeDuration: time.Duration(single * float64(time.Second)),
			WallDuration:       wall,
			Segments:           stats,
		}
	}
	return results, nil
}

// runPool executes the task list on min(nodes, tasks) worker goroutines.
// The first failing task cancels the shared context; workers drain the
// remaining queue without doing work, and in-flight segment loops abort at
// their next GOP-batch cancellation check.
func (f Farm) runPool(ctx context.Context, csp *trace.Span, data []byte, gops []gopRange,
	tasks []segTask, order []int, targets []Spec, seeds []uint64,
	outs [][]byte, headerLens []int) (time.Duration, error) {

	if len(tasks) == 0 {
		return 0, ctx.Err()
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	workers := len(f.Nodes)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	taskCh := make(chan segTask)
	start := time.Now()
	for w := 0; w < workers; w++ {
		node := f.Nodes[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range taskCh {
				if cctx.Err() != nil {
					continue // cancelled: drain without working
				}
				tsp := csp.StartChild("farm.task")
				if tsp != nil {
					tsp.Annotate("node", node)
					tsp.AnnotateInt("segment", int64(tk.seg))
					tsp.AnnotateInt("rendition", int64(tk.target))
				}
				if f.FaultHook != nil {
					if err := f.FaultHook(node, tk.seg); err != nil {
						tsp.SetError(err)
						tsp.End()
						fail(err)
						continue
					}
				}
				if err := runTask(cctx, data, gops, targets[tk.target],
					seeds[tk.target], outs[tk.target], headerLens[tk.target], tk); err != nil {
					tsp.SetError(err)
					fail(err)
				}
				tsp.End()
			}
		}()
	}
	for _, i := range order {
		if cctx.Err() != nil {
			break
		}
		select {
		case taskCh <- tasks[i]:
		case <-cctx.Done():
		}
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return time.Since(start), ctx.Err()
}

// runTask converts one segment's GOPs for one rendition, writing framing and
// payload straight into the rendition's pre-sized output buffer. Disjoint
// tasks touch disjoint byte ranges, so workers never contend.
func runTask(ctx context.Context, data []byte, gops []gopRange,
	target Spec, seed uint64, out []byte, headerLen int, tk segTask) error {

	gopLen := int(target.gopBytes())
	stride := int(gopHeaderLen) + gopLen
	for j := tk.bounds.start; j < tk.bounds.end; j++ {
		// Cancellation check per GOP batch: cheap enough to keep aborts
		// prompt without a per-byte tax.
		if (j-tk.bounds.start)%64 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		g := gops[j]
		buf := out[headerLen+j*stride : headerLen+(j+1)*stride]
		copy(buf, gopMagic)
		binary.BigEndian.PutUint32(buf[4:], g.index)
		binary.BigEndian.PutUint32(buf[8:], uint32(gopLen))
		transcodeGOPInto(buf[gopHeaderLen:], data[g.payload:g.payload+g.length], g.index, seed)
	}
	return nil
}
