// Package video is the FFmpeg stand-in of the paper's §IV: media files are
// split at GOP boundaries, converted per-segment on many nodes in parallel,
// and reassembled — the Figure 16 "FFmpeg split and conversion framework".
//
// Media files are real bytes in a simple container (a magic header, a JSON
// metadata block, then GOP chunks whose payloads are deterministic
// pseudo-data). Transcoding really rewrites every byte — output payloads are
// a deterministic function of the input payload and target parameters — so
// the package can prove the paper's integration property: splitting,
// converting in parallel, and merging produces bit-identical output to
// converting the whole file serially. Conversion *time* comes from a
// calibrated codec cost model (DESIGN.md §5.1).
package video

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
)

// Codec identifies a video codec. Factors are calibrated to 2012-era x86
// encoder throughput relative to real time.
type Codec string

// Supported codecs.
const (
	MPEG4  Codec = "mpeg4"
	H264   Codec = "h264"
	VP8    Codec = "vp8"
	Theora Codec = "theora"
)

// decodeFactor and encodeFactor are CPU-seconds per video-second at 720p30
// on a reference core.
var decodeFactor = map[Codec]float64{MPEG4: 0.05, H264: 0.15, VP8: 0.12, Theora: 0.08}
var encodeFactor = map[Codec]float64{MPEG4: 0.15, H264: 0.60, VP8: 0.50, Theora: 0.30}

// Valid reports whether the codec is supported.
func (c Codec) Valid() bool { _, ok := decodeFactor[c]; return ok }

// Resolution is a frame size.
type Resolution struct {
	W, H int
}

// Standard resolutions; the paper's player serves 720p (§IV-E).
var (
	R360p  = Resolution{640, 360}
	R480p  = Resolution{854, 480}
	R720p  = Resolution{1280, 720}
	R1080p = Resolution{1920, 1080}
)

// Pixels returns W*H.
func (r Resolution) Pixels() int { return r.W * r.H }

// String implements fmt.Stringer.
func (r Resolution) String() string { return fmt.Sprintf("%dx%d", r.W, r.H) }

// Spec describes a media encoding.
type Spec struct {
	Codec      Codec      `json:"codec"`
	Res        Resolution `json:"res"`
	FPS        int        `json:"fps"`
	GOPSeconds int        `json:"gop_seconds"`
	BitrateBps int64      `json:"bitrate_bps"`
}

func (s Spec) validate() error {
	if !s.Codec.Valid() {
		return fmt.Errorf("video: unknown codec %q", s.Codec)
	}
	if s.Res.Pixels() <= 0 {
		return fmt.Errorf("video: bad resolution %v", s.Res)
	}
	if s.FPS <= 0 || s.GOPSeconds <= 0 || s.BitrateBps <= 0 {
		return fmt.Errorf("video: non-positive fps/gop/bitrate")
	}
	return nil
}

// gopBytes is the payload size of one GOP at this spec.
func (s Spec) gopBytes() int64 { return s.BitrateBps / 8 * int64(s.GOPSeconds) }

// Info is the parsed metadata of a media file. FirstGOP is non-zero for
// segments produced by Split, which keep their global GOP numbering so a
// later Merge can restore the original order.
type Info struct {
	Spec            Spec `json:"spec"`
	DurationSeconds int  `json:"duration_seconds"`
	GOPs            int  `json:"gops"`
	FirstGOP        int  `json:"first_gop,omitempty"`
}

// Size returns the expected container size in bytes.
func (i Info) Size() int64 {
	return headerSize(i) + int64(i.GOPs)*(gopHeaderLen+i.Spec.gopBytes())
}

const (
	magic        = "VCF1"
	gopMagic     = "GOP!"
	gopHeaderLen = int64(len(gopMagic) + 4 + 4) // marker + index + length
)

func headerSize(i Info) int64 {
	meta, _ := json.Marshal(i)
	return int64(len(magic) + 4 + len(meta))
}

// Errors returned by Parse.
var (
	ErrBadMagic  = errors.New("video: not a media file")
	ErrTruncated = errors.New("video: truncated media file")
)

// Generate synthesizes a source media file of the given duration. Content
// derives deterministically from seed — distinct uploads get distinct bytes.
func Generate(spec Spec, durationSeconds int, seed uint64) ([]byte, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if durationSeconds <= 0 {
		return nil, fmt.Errorf("video: non-positive duration %d", durationSeconds)
	}
	gops := (durationSeconds + spec.GOPSeconds - 1) / spec.GOPSeconds
	info := Info{Spec: spec, DurationSeconds: durationSeconds, GOPs: gops}
	out := appendHeader(make([]byte, 0, info.Size()), info)
	payload := make([]byte, spec.gopBytes())
	for g := 0; g < gops; g++ {
		fillPayload(payload, seed^uint64(g+1)*0x9e3779b97f4a7c15)
		out = appendGOP(out, uint32(g), payload)
	}
	return out, nil
}

func appendHeader(dst []byte, info Info) []byte {
	meta, _ := json.Marshal(info)
	dst = append(dst, magic...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(meta)))
	return append(dst, meta...)
}

func appendGOP(dst []byte, index uint32, payload []byte) []byte {
	dst = appendGOPHeader(dst, index, len(payload))
	return append(dst, payload...)
}

// appendGOPHeader writes just the GOP framing (marker, index, payload
// length); callers that produce the payload in place follow it with a
// direct write into the pre-sized buffer.
func appendGOPHeader(dst []byte, index uint32, payloadLen int) []byte {
	dst = append(dst, gopMagic...)
	dst = binary.BigEndian.AppendUint32(dst, index)
	return binary.BigEndian.AppendUint32(dst, uint32(payloadLen))
}

// fillPayload writes deterministic pseudo-data (splitmix-style seed mix
// feeding an xorshift stream).
func fillPayload(dst []byte, seed uint64) {
	x := seed + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	for i := 0; i < len(dst); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := x
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = byte(v)
			v >>= 8
		}
	}
}

// parseCalls counts full container parses; tests use it to prove the farm's
// single-parse contract (ConvertMulti must not re-parse per rendition).
var parseCalls atomic.Int64

// gopRange locates one GOP's bytes within a container.
type gopRange struct {
	index   uint32
	start   int64 // offset of the GOP marker
	payload int64 // offset of the payload
	length  int64 // payload length
}

// Parse validates a container and returns its metadata and GOP layout.
func Parse(data []byte) (Info, []gopRange, error) {
	var info Info
	if len(data) < len(magic)+4 || string(data[:4]) != magic {
		return info, nil, ErrBadMagic
	}
	metaLen := int64(binary.BigEndian.Uint32(data[4:8]))
	if int64(len(data)) < 8+metaLen {
		return info, nil, ErrTruncated
	}
	if err := json.Unmarshal(data[8:8+metaLen], &info); err != nil {
		return info, nil, fmt.Errorf("video: bad metadata: %w", err)
	}
	if err := info.Spec.validate(); err != nil {
		return info, nil, err
	}
	// A container with no GOPs carries no playable content; rejecting it here
	// keeps zero-GOP files out of every consumer (Probe admits uploads, and
	// the farm partitions on the GOP count).
	if info.GOPs <= 0 {
		return info, nil, fmt.Errorf("video: header claims %d GOPs", info.GOPs)
	}
	parseCalls.Add(1)
	// Pre-size from the header's GOP count (bounded by what could actually
	// fit in the file) so parsing a long video does one allocation, not a
	// growth cascade.
	capGOPs := info.GOPs
	if max := int(int64(len(data)) / gopHeaderLen); capGOPs > max {
		capGOPs = max
	}
	gops := make([]gopRange, 0, capGOPs)
	off := 8 + metaLen
	for off < int64(len(data)) {
		if int64(len(data)) < off+gopHeaderLen {
			return info, nil, ErrTruncated
		}
		if string(data[off:off+4]) != gopMagic {
			return info, nil, fmt.Errorf("video: bad GOP marker at %d", off)
		}
		idx := binary.BigEndian.Uint32(data[off+4 : off+8])
		plen := int64(binary.BigEndian.Uint32(data[off+8 : off+12]))
		if int64(len(data)) < off+gopHeaderLen+plen {
			return info, nil, ErrTruncated
		}
		gops = append(gops, gopRange{
			index: idx, start: off, payload: off + gopHeaderLen, length: plen,
		})
		off += gopHeaderLen + plen
	}
	if len(gops) != info.GOPs {
		return info, nil, fmt.Errorf("video: header claims %d GOPs, found %d", info.GOPs, len(gops))
	}
	for i, g := range gops {
		if g.index != uint32(info.FirstGOP+i) {
			return info, nil, fmt.Errorf("video: GOP %d out of order (index %d, want %d)",
				i, g.index, info.FirstGOP+i)
		}
	}
	return info, gops, nil
}

// Probe returns just the metadata (ffprobe).
func Probe(data []byte) (Info, error) {
	info, _, err := Parse(data)
	return info, err
}
