package video

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFarmBitIdenticalEveryNodeCount is the determinism gate: the parallel
// worker-pool output must equal serial whole-file conversion byte-for-byte
// at every node count, for a file with an uneven final segment.
func TestFarmBitIdenticalEveryNodeCount(t *testing.T) {
	data, err := Generate(srcSpec(), 119, 77) // 60 GOPs, last one short
	if err != nil {
		t.Fatal(err)
	}
	whole, err := Transcoder{}.Convert(data, dstSpec())
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 8; n++ {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("dn%d", i)
		}
		res, err := Farm{Nodes: nodes}.Convert(data, dstSpec())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(res.Output, whole.Output) {
			t.Fatalf("n=%d: parallel output differs from serial conversion", n)
		}
		if res.Info != whole.Info {
			t.Fatalf("n=%d: info = %+v, want %+v", n, res.Info, whole.Info)
		}
	}
}

// TestConvertMultiMatchesConvert checks every rendition from a single
// ConvertMulti pass equals a standalone Convert — output bytes, modelled
// duration, and schedule alike.
func TestConvertMultiMatchesConvert(t *testing.T) {
	data, _ := Generate(srcSpec(), 90, 3)
	farm := Farm{Nodes: []string{"a", "b", "c"}}
	mobile := Spec{Codec: H264, Res: R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 300_000}
	vp8 := Spec{Codec: VP8, Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 500_000}
	targets := []Spec{dstSpec(), mobile, vp8}

	multi, err := farm.ConvertMulti(data, targets...)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(targets) {
		t.Fatalf("got %d results", len(multi))
	}
	for i, target := range targets {
		solo, err := farm.Convert(data, target)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(multi[i].Output, solo.Output) {
			t.Fatalf("target %d: multi output differs from solo convert", i)
		}
		if multi[i].Duration != solo.Duration || multi[i].SingleNodeDuration != solo.SingleNodeDuration {
			t.Fatalf("target %d: modelled durations diverge: %v/%v vs %v/%v",
				i, multi[i].Duration, multi[i].SingleNodeDuration, solo.Duration, solo.SingleNodeDuration)
		}
	}
}

// TestConvertMultiParsesOnce gates the single-split contract: converting to
// three renditions must parse the source container exactly once.
func TestConvertMultiParsesOnce(t *testing.T) {
	data, _ := Generate(srcSpec(), 60, 4)
	farm := Farm{Nodes: []string{"a", "b"}}
	mobile := Spec{Codec: H264, Res: R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 300_000}
	theora := Spec{Codec: Theora, Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 400_000}

	before := parseCalls.Load()
	if _, err := farm.ConvertMulti(data, dstSpec(), mobile, theora); err != nil {
		t.Fatal(err)
	}
	if got := parseCalls.Load() - before; got != 1 {
		t.Fatalf("ConvertMulti with 3 renditions parsed the source %d times, want 1", got)
	}
}

func TestErrNoNodes(t *testing.T) {
	data, _ := Generate(srcSpec(), 10, 1)
	_, err := (Farm{}).Convert(data, dstSpec())
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
	if _, err := (Farm{}).ConvertMulti(data, dstSpec()); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("multi err = %v, want ErrNoNodes", err)
	}
	// A conversion failure on a configured farm is NOT ErrNoNodes.
	if _, err := (Farm{Nodes: []string{"a"}}).Convert([]byte("junk"), dstSpec()); errors.Is(err, ErrNoNodes) {
		t.Fatal("parse failure reported as ErrNoNodes")
	}
}

// TestFarmCancellationAbortsWorkers injects a failing segment and checks the
// first error cancels the rest of the queue: with 4 workers and 32 tasks, at
// most the in-flight tasks run; everything queued behind the failure is
// skipped.
func TestFarmCancellationAbortsWorkers(t *testing.T) {
	data, _ := Generate(srcSpec(), 128, 11) // 64 GOPs
	boom := errors.New("segment fault")
	var started atomic.Int64
	release := make(chan struct{})
	var failOnce sync.Once
	farm := Farm{
		Nodes:           []string{"n0", "n1", "n2", "n3"},
		SegmentsPerNode: 8, // 32 segments
		FaultHook: func(node string, segment int) error {
			n := started.Add(1)
			if n == 1 {
				// First task to run fails; the farm must cancel the rest.
				failOnce.Do(func() { close(release) })
				return boom
			}
			// Tasks already picked up by other workers wait until the
			// failure has been delivered, then proceed; nothing queued
			// after the cancellation may start at all.
			<-release
			return nil
		},
	}
	_, err := farm.Convert(data, dstSpec())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// At most one task per worker was in flight when the fault hit, plus a
	// small scheduling-race allowance; the other ~24 queued tasks must
	// never start.
	if n := started.Load(); n > 8 {
		t.Fatalf("%d of 32 tasks started after a cancelling fault; cancellation did not propagate", n)
	}
}

// TestConvertContextCancelled checks an externally cancelled context aborts
// the conversion.
func TestConvertContextCancelled(t *testing.T) {
	data, _ := Generate(srcSpec(), 60, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Farm{Nodes: []string{"a", "b"}}).ConvertContext(ctx, data, dstSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMeasuredParallelSpeedup is the wall-clock gate of ISSUE 2: real
// conversion with 4 workers must be at least 2× faster than with 1 worker.
// The transcode is CPU-bound byte rewriting, so this needs real cores;
// machines with fewer than 4 are skipped (the benchmark in bench_test.go
// still records their numbers).
func TestMeasuredParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need 4 CPUs for a meaningful wall-clock gate, have %d (GOMAXPROCS %d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	src := Spec{Codec: MPEG4, Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 1_500_000}
	dst := Spec{Codec: H264, Res: R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 3_000_000}
	data, err := Generate(src, 600, 2012)
	if err != nil {
		t.Fatal(err)
	}
	wall := func(nodes int) time.Duration {
		names := make([]string, nodes)
		for i := range names {
			names[i] = fmt.Sprintf("n%d", i)
		}
		best := time.Duration(1<<62 - 1)
		for run := 0; run < 3; run++ {
			res, err := Farm{Nodes: names, SegmentsPerNode: 4}.Convert(data, dst)
			if err != nil {
				t.Fatal(err)
			}
			if res.WallDuration < best {
				best = res.WallDuration
			}
		}
		return best
	}
	serial := wall(1)
	parallel := wall(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("wall clock: 1 worker %v, 4 workers %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Fatalf("4-worker wall-clock speedup %.2fx, want >= 2x", speedup)
	}
}
