package video

import "fmt"

// This file is the fixed-duration half of the Figure 16 splitter: where
// Split cuts a file into N even pieces for parallel conversion, Segments
// cuts it into time-indexed pieces of a constant play length — the unit of
// HLS-style segmented delivery. Both produce self-contained containers that
// keep their global GOP numbering, so segments remain Merge-able back into
// the whole file.

// validateSegmentLength checks that segSeconds cuts the spec's GOP cadence
// exactly: segments must end on GOP boundaries or they are not independently
// decodable.
func validateSegmentLength(spec Spec, segSeconds int) (gopsPerSegment int, err error) {
	if segSeconds <= 0 {
		return 0, fmt.Errorf("video: non-positive segment length %ds", segSeconds)
	}
	if spec.GOPSeconds <= 0 || segSeconds%spec.GOPSeconds != 0 {
		return 0, fmt.Errorf("video: segment length %ds is not a multiple of the %ds GOP cadence",
			segSeconds, spec.GOPSeconds)
	}
	return segSeconds / spec.GOPSeconds, nil
}

// SegmentCount is the number of segSeconds-long segments covering a video of
// the given duration (the final segment may be shorter). It needs only the
// two integers a catalog row stores, so playlist builders never re-probe the
// media. Zero for non-positive inputs.
func SegmentCount(durationSeconds, segSeconds int) int {
	if durationSeconds <= 0 || segSeconds <= 0 {
		return 0
	}
	return (durationSeconds + segSeconds - 1) / segSeconds
}

// SegmentPlaySeconds is the play time of segment k: segSeconds for every
// segment but the last, which covers the remainder.
func SegmentPlaySeconds(durationSeconds, segSeconds, k int) int {
	count := SegmentCount(durationSeconds, segSeconds)
	if k < 0 || k >= count {
		return 0
	}
	if k == count-1 {
		return durationSeconds - (count-1)*segSeconds
	}
	return segSeconds
}

// Segments cuts a media file into consecutive segments of segSeconds play
// time each (the last may be shorter). segSeconds must be a whole multiple
// of the file's GOP cadence. Each segment is a self-contained container
// preserving its global GOP indices, exactly like Split's output.
func Segments(data []byte, segSeconds int) ([][]byte, error) {
	info, gops, err := Parse(data)
	if err != nil {
		return nil, err
	}
	per, err := validateSegmentLength(info.Spec, segSeconds)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, (len(gops)+per-1)/per)
	for start := 0; start < len(gops); start += per {
		end := start + per
		if end > len(gops) {
			end = len(gops)
		}
		segInfo := segmentInfo(info, segBounds{start: start, end: end})
		segInfo.FirstGOP = info.FirstGOP + start
		seg := appendHeader(make([]byte, 0, segInfo.Size()), segInfo)
		for _, g := range gops[start:end] {
			seg = appendGOP(seg, g.index, data[g.payload:g.payload+g.length])
		}
		out = append(out, seg)
	}
	return out, nil
}

// Rebase renumbers a container's GOPs to start at firstGOP. Live publishing
// uses it to stamp each freshly converted segment with its global position
// in the channel's timeline, so live segments carry the same contiguous
// numbering VOD segments get from Segments (and stay Merge-able).
func Rebase(data []byte, firstGOP int) ([]byte, error) {
	if firstGOP < 0 {
		return nil, fmt.Errorf("video: negative first GOP %d", firstGOP)
	}
	info, gops, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if info.FirstGOP == firstGOP {
		return data, nil
	}
	info.FirstGOP = firstGOP
	out := appendHeader(make([]byte, 0, info.Size()), info)
	for i, g := range gops {
		out = appendGOP(out, uint32(firstGOP+i), data[g.payload:g.payload+g.length])
	}
	return out, nil
}
