package video

import (
	"bytes"
	"testing"
)

func TestSegmentsCutAndMerge(t *testing.T) {
	spec := Spec{Codec: MPEG4, Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000}
	data, err := Generate(spec, 30, 7) // 15 GOPs
	if err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(data, 4) // 2 GOPs per segment -> 8 segments, last short
	if err != nil {
		t.Fatal(err)
	}
	if want := SegmentCount(30, 4); len(segs) != want {
		t.Fatalf("got %d segments, want %d", len(segs), want)
	}
	totalDur := 0
	for k, seg := range segs {
		info, err := Probe(seg)
		if err != nil {
			t.Fatalf("segment %d: %v", k, err)
		}
		if info.FirstGOP != k*2 {
			t.Errorf("segment %d: FirstGOP %d, want %d", k, info.FirstGOP, k*2)
		}
		if want := SegmentPlaySeconds(30, 4, k); info.DurationSeconds != want {
			t.Errorf("segment %d: duration %ds, want %ds", k, info.DurationSeconds, want)
		}
		totalDur += info.DurationSeconds
	}
	if totalDur != 30 {
		t.Errorf("segment durations sum to %ds, want 30s", totalDur)
	}
	merged, err := Merge(segs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, data) {
		t.Error("merging segments did not restore the original container")
	}
}

func TestSegmentsRejectBadLength(t *testing.T) {
	spec := Spec{Codec: MPEG4, Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000}
	data, err := Generate(spec, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, segSeconds := range []int{0, -4, 3} { // 3 is not a multiple of the 2s GOP
		if _, err := Segments(data, segSeconds); err == nil {
			t.Errorf("Segments(%d) accepted a bad segment length", segSeconds)
		}
	}
}

func TestSegmentCountMath(t *testing.T) {
	cases := []struct{ dur, seg, want int }{
		{30, 4, 8}, {32, 4, 8}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2},
		{0, 4, 0}, {30, 0, 0},
	}
	for _, c := range cases {
		if got := SegmentCount(c.dur, c.seg); got != c.want {
			t.Errorf("SegmentCount(%d, %d) = %d, want %d", c.dur, c.seg, got, c.want)
		}
	}
	if got := SegmentPlaySeconds(30, 4, 7); got != 2 {
		t.Errorf("last segment of 30s/4s plays %ds, want 2", got)
	}
	if got := SegmentPlaySeconds(30, 4, 8); got != 0 {
		t.Errorf("out-of-range segment plays %ds, want 0", got)
	}
}

func TestRebaseRenumbersGOPs(t *testing.T) {
	spec := Spec{Codec: H264, Res: R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 80_000}
	data, err := Generate(spec, 4, 3) // 2 GOPs starting at 0
	if err != nil {
		t.Fatal(err)
	}
	moved, err := Rebase(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Probe(moved)
	if err != nil {
		t.Fatal(err)
	}
	if info.FirstGOP != 6 || info.GOPs != 2 {
		t.Fatalf("rebased info = %+v, want FirstGOP 6, GOPs 2", info)
	}
	// Rebase to the current base is the identity.
	same, err := Rebase(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(same, data) {
		t.Error("Rebase to the existing FirstGOP changed bytes")
	}
	if _, err := Rebase(data, -1); err == nil {
		t.Error("Rebase accepted a negative first GOP")
	}
}
