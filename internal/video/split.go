package video

import (
	"fmt"
	"sort"
)

// This file implements Figure 16: "how films [are] transferred and divided
// after uploading, and later assembled in integration stage". Splitting cuts
// at GOP boundaries (each GOP decodes independently, so segments are valid
// media files), and merging restores a container bit-identical to what
// whole-file conversion would have produced.

// segBounds is one segment's GOP range [start, end) within a parsed file.
type segBounds struct {
	start, end int
}

// partition divides gopCount GOPs into up to n contiguous ranges, as evenly
// as possible. It is the single source of segment boundaries shared by Split
// and the farm (which partitions a file it has already parsed instead of
// re-parsing per segment).
func partition(gopCount, n int) []segBounds {
	if gopCount <= 0 || n <= 0 {
		return nil
	}
	if n > gopCount {
		n = gopCount
	}
	bounds := make([]segBounds, 0, n)
	per := gopCount / n
	extra := gopCount % n
	start := 0
	for s := 0; s < n; s++ {
		count := per
		if s < extra {
			count++
		}
		bounds = append(bounds, segBounds{start: start, end: start + count})
		start += count
	}
	return bounds
}

// segmentInfo is the metadata Split writes for GOPs [start, end).
func segmentInfo(info Info, b segBounds) Info {
	return Info{
		Spec:            info.Spec,
		DurationSeconds: segmentDuration(info, b.start, b.end),
		GOPs:            b.end - b.start,
		FirstGOP:        b.start,
	}
}

// Split cuts a media file into up to n segments of whole GOPs, as evenly as
// possible. Fewer segments are returned when the file has fewer GOPs than n.
// Each segment is a self-contained container preserving its global GOP
// indices (Info.FirstGOP).
func Split(data []byte, n int) ([][]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("video: split into %d segments", n)
	}
	info, gops, err := Parse(data)
	if err != nil {
		return nil, err
	}
	segments := make([][]byte, 0, n)
	for _, b := range partition(len(gops), n) {
		segInfo := segmentInfo(info, b)
		out := appendHeader(make([]byte, 0, segInfo.Size()), segInfo)
		for _, g := range gops[b.start:b.end] {
			out = appendGOP(out, g.index, data[g.payload:g.payload+g.length])
		}
		segments = append(segments, out)
	}
	return segments, nil
}

// segmentDuration is the play time covered by GOPs [start, end): full GOPs
// except that the file's final GOP may be shorter.
func segmentDuration(info Info, start, end int) int {
	d := (end - start) * info.Spec.GOPSeconds
	if end == info.GOPs {
		full := (info.GOPs - 1) * info.Spec.GOPSeconds
		last := info.DurationSeconds - full
		d = (end-start-1)*info.Spec.GOPSeconds + last
	}
	return d
}

// Merge reassembles segments (in any order) into one container. Segments
// must share a spec and cover a contiguous GOP range starting at 0.
func Merge(segments [][]byte) ([]byte, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("video: merge of zero segments")
	}
	type seg struct {
		info Info
		gops []gopRange
		data []byte
	}
	parsed := make([]seg, len(segments))
	for i, s := range segments {
		info, gops, err := Parse(s)
		if err != nil {
			return nil, fmt.Errorf("video: segment %d: %w", i, err)
		}
		parsed[i] = seg{info: info, gops: gops, data: s}
	}
	sort.Slice(parsed, func(i, j int) bool {
		return parsed[i].info.FirstGOP < parsed[j].info.FirstGOP
	})
	spec := parsed[0].info.Spec
	totalGOPs, totalDur := 0, 0
	var payloadBytes int64
	for i, s := range parsed {
		if s.info.Spec != spec {
			return nil, fmt.Errorf("video: segment %d spec mismatch", i)
		}
		if s.info.FirstGOP != totalGOPs {
			return nil, fmt.Errorf("video: GOP gap at segment %d: have %d, want %d",
				i, s.info.FirstGOP, totalGOPs)
		}
		totalGOPs += s.info.GOPs
		totalDur += s.info.DurationSeconds
		for _, g := range s.gops {
			payloadBytes += gopHeaderLen + g.length
		}
	}
	outInfo := Info{Spec: spec, DurationSeconds: totalDur, GOPs: totalGOPs}
	out := appendHeader(make([]byte, 0, headerSize(outInfo)+payloadBytes), outInfo)
	for _, s := range parsed {
		for _, g := range s.gops {
			out = appendGOP(out, g.index, s.data[g.payload:g.payload+g.length])
		}
	}
	return out, nil
}
