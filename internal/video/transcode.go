package video

import (
	"fmt"
	"hash/crc64"
	"time"
)

// Transcoder converts media between specs. Speed scales compute time: a
// node with Speed 2 transcodes twice as fast as the reference core.
type Transcoder struct {
	// Speed is the node's compute factor relative to the reference core
	// (default 1.0).
	Speed float64
}

func (t Transcoder) speed() float64 {
	if t.Speed <= 0 {
		return 1.0
	}
	return t.Speed
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// transcodeGOP rewrites one GOP payload for the target spec. The output is
// a pure deterministic function of (input payload, GOP index, target), which
// is what makes split-convert-merge bit-identical to whole-file conversion.
func transcodeGOP(payload []byte, index uint32, target Spec) []byte {
	out := make([]byte, target.gopBytes())
	transcodeGOPInto(out, payload, index, specSeed(target))
	return out
}

// transcodeGOPInto is the allocation-free core of transcodeGOP: it rewrites
// one GOP payload directly into dst (which must be target.gopBytes() long).
// seed is the target's specSeed, hoisted out so a conversion hashes the spec
// once instead of once per GOP.
func transcodeGOPInto(dst, payload []byte, index uint32, seed uint64) {
	sig := crc64.Checksum(payload, crcTable)
	fillPayload(dst, sig^uint64(index+1)*0xbf58476d1ce4e5b9^seed)
}

func specSeed(s Spec) uint64 {
	h := crc64.New(crcTable)
	fmt.Fprintf(h, "%s/%dx%d/%d/%d/%d", s.Codec, s.Res.W, s.Res.H, s.FPS, s.GOPSeconds, s.BitrateBps)
	return h.Sum64()
}

// CostSeconds returns the modelled CPU time (on a reference core) to
// convert videoSeconds of material from src to dst parameters: decode at
// the source resolution plus encode at the target resolution, scaled by
// frame rate.
func CostSeconds(src, dst Spec, videoSeconds float64) float64 {
	base := float64(R720p.Pixels())
	dec := decodeFactor[src.Codec] * float64(src.Res.Pixels()) / base * float64(src.FPS) / 30
	enc := encodeFactor[dst.Codec] * float64(dst.Res.Pixels()) / base * float64(dst.FPS) / 30
	return (dec + enc) * videoSeconds
}

// Result reports one conversion.
type Result struct {
	Output []byte
	Info   Info
	// CPUTime is the modelled compute time on this transcoder.
	CPUTime time.Duration
}

// Convert transcodes a whole media file to the target spec. The target's
// GOPSeconds must match the source's (FFmpeg's segment-level conversion
// keeps keyframe cadence so segments stay independently decodable).
func (t Transcoder) Convert(data []byte, target Spec) (*Result, error) {
	info, gops, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if err := target.validate(); err != nil {
		return nil, err
	}
	if target.GOPSeconds != info.Spec.GOPSeconds {
		return nil, fmt.Errorf("video: GOP cadence change %d->%d not supported",
			info.Spec.GOPSeconds, target.GOPSeconds)
	}
	outInfo := Info{
		Spec: target, DurationSeconds: info.DurationSeconds,
		GOPs: info.GOPs, FirstGOP: info.FirstGOP,
	}
	// One pre-sized allocation for the whole output; each GOP is rewritten
	// in place instead of through a per-GOP temporary.
	out := appendHeader(make([]byte, 0, outInfo.Size()), outInfo)
	seed := specSeed(target)
	gopLen := int(target.gopBytes())
	for _, g := range gops {
		payload := data[g.payload : g.payload+g.length]
		out = appendGOPHeader(out, g.index, gopLen)
		n := len(out)
		if cap(out) >= n+gopLen {
			out = out[:n+gopLen]
		} else {
			out = append(out, make([]byte, gopLen)...)
		}
		transcodeGOPInto(out[n:], payload, g.index, seed)
	}
	secs := CostSeconds(info.Spec, target, float64(info.DurationSeconds)) / t.speed()
	return &Result{
		Output:  out,
		Info:    outInfo,
		CPUTime: time.Duration(secs * float64(time.Second)),
	}, nil
}
