package video

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func srcSpec() Spec {
	return Spec{Codec: MPEG4, Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 400_000}
}

func dstSpec() Spec {
	// The paper's player target: H.264 720p (§IV-E).
	return Spec{Codec: H264, Res: R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 800_000}
}

func TestGenerateParseRoundTrip(t *testing.T) {
	data, err := Generate(srcSpec(), 61, 42)
	if err != nil {
		t.Fatal(err)
	}
	info, gops, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.DurationSeconds != 61 {
		t.Fatalf("duration = %d", info.DurationSeconds)
	}
	if info.GOPs != 31 || len(gops) != 31 { // ceil(61/2)
		t.Fatalf("GOPs = %d/%d", info.GOPs, len(gops))
	}
	if int64(len(data)) != info.Size() {
		t.Fatalf("size = %d, want %d", len(data), info.Size())
	}
	// Distinct seeds give distinct content.
	other, _ := Generate(srcSpec(), 61, 43)
	if bytes.Equal(data, other) {
		t.Fatal("different seeds produced identical files")
	}
	// Same seed is deterministic.
	same, _ := Generate(srcSpec(), 61, 42)
	if !bytes.Equal(data, same) {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := srcSpec()
	bad.Codec = "divx"
	if _, err := Generate(bad, 10, 1); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := Generate(srcSpec(), 0, 1); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad = srcSpec()
	bad.FPS = 0
	if _, err := Generate(bad, 10, 1); err == nil {
		t.Fatal("zero fps accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := Parse([]byte("not a video")); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
	data, _ := Generate(srcSpec(), 10, 1)
	if _, _, err := Parse(data[:len(data)-5]); err == nil {
		t.Fatal("truncated file parsed")
	}
	// Corrupt a GOP marker.
	cp := append([]byte(nil), data...)
	info, gops, _ := Parse(data)
	_ = info
	cp[gops[1].start] = 'X'
	if _, _, err := Parse(cp); err == nil {
		t.Fatal("corrupt marker parsed")
	}
}

func TestConvertChangesSpecAndSize(t *testing.T) {
	data, _ := Generate(srcSpec(), 60, 7)
	res, err := Transcoder{}.Convert(data, dstSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Spec != dstSpec() {
		t.Fatalf("spec = %+v", res.Info.Spec)
	}
	if res.Info.DurationSeconds != 60 {
		t.Fatalf("duration = %d", res.Info.DurationSeconds)
	}
	// Double the bitrate => roughly double the payload.
	if len(res.Output) < len(data)*3/2 {
		t.Fatalf("output %d not ~2x input %d", len(res.Output), len(data))
	}
	if res.CPUTime <= 0 {
		t.Fatal("no CPU time modelled")
	}
	// Deterministic.
	res2, _ := Transcoder{}.Convert(data, dstSpec())
	if !bytes.Equal(res.Output, res2.Output) {
		t.Fatal("conversion not deterministic")
	}
	// GOP cadence change rejected.
	badTarget := dstSpec()
	badTarget.GOPSeconds = 4
	if _, err := (Transcoder{}).Convert(data, badTarget); err == nil {
		t.Fatal("cadence change accepted")
	}
}

func TestCostModelOrdering(t *testing.T) {
	src := srcSpec()
	// Encoding H.264 costs more than MPEG4 at the same geometry.
	h264 := dstSpec()
	mpeg4 := dstSpec()
	mpeg4.Codec = MPEG4
	if CostSeconds(src, h264, 60) <= CostSeconds(src, mpeg4, 60) {
		t.Fatal("H.264 encode not more expensive than MPEG4")
	}
	// 1080p costs more than 720p.
	big := dstSpec()
	big.Res = R1080p
	if CostSeconds(src, big, 60) <= CostSeconds(src, dstSpec(), 60) {
		t.Fatal("1080p not more expensive than 720p")
	}
	// Faster node shortens time.
	data, _ := Generate(src, 30, 1)
	slow, _ := Transcoder{Speed: 1}.Convert(data, dstSpec())
	fast, _ := Transcoder{Speed: 4}.Convert(data, dstSpec())
	if fast.CPUTime*3 > slow.CPUTime {
		t.Fatalf("speed 4 gave %v vs %v", fast.CPUTime, slow.CPUTime)
	}
}

func TestSplitMergeIdentity(t *testing.T) {
	data, _ := Generate(srcSpec(), 57, 9) // 29 GOPs, last one short
	for _, n := range []int{1, 2, 3, 7, 29, 100} {
		segs, err := Split(data, n)
		if err != nil {
			t.Fatal(err)
		}
		wantSegs := n
		if wantSegs > 29 {
			wantSegs = 29
		}
		if len(segs) != wantSegs {
			t.Fatalf("n=%d: %d segments", n, len(segs))
		}
		back, err := Merge(segs)
		if err != nil {
			t.Fatalf("n=%d: merge: %v", n, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("n=%d: split+merge is not identity", n)
		}
	}
}

func TestMergeOutOfOrderSegments(t *testing.T) {
	data, _ := Generate(srcSpec(), 20, 3)
	segs, _ := Split(data, 4)
	// Shuffle.
	segs[0], segs[3] = segs[3], segs[0]
	segs[1], segs[2] = segs[2], segs[1]
	back, err := Merge(segs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("merge did not reorder segments")
	}
}

func TestMergeRejectsGaps(t *testing.T) {
	data, _ := Generate(srcSpec(), 20, 3)
	segs, _ := Split(data, 4)
	if _, err := Merge([][]byte{segs[0], segs[2]}); err == nil {
		t.Fatal("gap accepted")
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	// Spec mismatch.
	conv, _ := Transcoder{}.Convert(segs[1], dstSpec())
	if _, err := Merge([][]byte{segs[0], conv.Output}); err == nil {
		t.Fatal("mixed-spec merge accepted")
	}
}

// The headline Figure 16 property: parallel per-segment conversion then
// merge is bit-identical to whole-file conversion.
func TestParallelConversionBitIdentical(t *testing.T) {
	data, _ := Generate(srcSpec(), 119, 21)
	whole, err := Transcoder{}.Convert(data, dstSpec())
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := Split(data, 8)
	conv := make([][]byte, len(segs))
	for i, s := range segs {
		r, err := Transcoder{}.Convert(s, dstSpec())
		if err != nil {
			t.Fatal(err)
		}
		conv[i] = r.Output
	}
	merged, err := Merge(conv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, whole.Output) {
		t.Fatal("split-convert-merge differs from whole-file conversion")
	}
}

func TestFarmConvert(t *testing.T) {
	data, _ := Generate(srcSpec(), 300, 5) // a 5-minute upload
	farm := Farm{Nodes: []string{"n1", "n2", "n3", "n4"}}
	res, err := farm.Convert(data, dstSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Output identical to single-node conversion.
	whole, _ := Transcoder{}.Convert(data, dstSpec())
	if !bytes.Equal(res.Output, whole.Output) {
		t.Fatal("farm output differs from single-node output")
	}
	// The paper's claim: less execution time than a single node.
	if res.Duration >= res.SingleNodeDuration {
		t.Fatalf("farm %v not faster than single node %v", res.Duration, res.SingleNodeDuration)
	}
	if s := res.Speedup(); s < 2 || s > 4.5 {
		t.Fatalf("4-node speedup = %.2f, want within (2, 4.5)", s)
	}
	// Work spread over all nodes.
	used := map[string]bool{}
	for _, st := range res.Segments {
		used[st.Node] = true
	}
	if len(used) != 4 {
		t.Fatalf("only %d nodes used", len(used))
	}
}

func TestFarmScalesWithNodes(t *testing.T) {
	data, _ := Generate(srcSpec(), 240, 6)
	durs := map[int]time.Duration{}
	for _, n := range []int{1, 2, 4, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = strings.Repeat("n", i+1)
		}
		res, err := Farm{Nodes: nodes}.Convert(data, dstSpec())
		if err != nil {
			t.Fatal(err)
		}
		durs[n] = res.Duration
	}
	if !(durs[1] > durs[2] && durs[2] > durs[4] && durs[4] > durs[8]) {
		t.Fatalf("no monotone scaling: %v", durs)
	}
}

func TestFarmValidation(t *testing.T) {
	data, _ := Generate(srcSpec(), 10, 1)
	if _, err := (Farm{}).Convert(data, dstSpec()); err == nil {
		t.Fatal("empty farm accepted")
	}
	if _, err := (Farm{Nodes: []string{"a"}}).Convert([]byte("junk"), dstSpec()); err == nil {
		t.Fatal("junk input accepted")
	}
}

// Property: for any duration and segment count, split+merge is the identity
// and the merged conversion equals whole-file conversion.
func TestPropertySplitConvertMerge(t *testing.T) {
	f := func(dur uint8, n uint8, seed uint64) bool {
		d := int(dur%120) + 1
		k := int(n%12) + 1
		data, err := Generate(srcSpec(), d, seed)
		if err != nil {
			return false
		}
		segs, err := Split(data, k)
		if err != nil {
			return false
		}
		back, err := Merge(segs)
		if err != nil || !bytes.Equal(back, data) {
			return false
		}
		whole, err := Transcoder{}.Convert(data, dstSpec())
		if err != nil {
			return false
		}
		conv := make([][]byte, len(segs))
		for i, s := range segs {
			r, err := Transcoder{}.Convert(s, dstSpec())
			if err != nil {
				return false
			}
			conv[i] = r.Output
		}
		merged, err := Merge(conv)
		if err != nil {
			return false
		}
		return bytes.Equal(merged, whole.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	data, _ := Generate(srcSpec(), 30, 2)
	info, err := Probe(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Spec.Codec != MPEG4 || info.DurationSeconds != 30 {
		t.Fatalf("probe = %+v", info)
	}
}

// TestZeroGOPContainerRejected guards the farm against the crafted-upload
// DoS: a container whose header claims zero GOPs (with an otherwise valid
// spec) used to pass Parse and Probe, then panic partition() with a divide
// by zero inside a queue worker. It must now be rejected everywhere, and
// partition itself must tolerate degenerate inputs.
func TestZeroGOPContainerRejected(t *testing.T) {
	data := appendHeader(nil, Info{Spec: srcSpec(), DurationSeconds: 0, GOPs: 0})
	if _, _, err := Parse(data); err == nil {
		t.Fatal("Parse accepted a zero-GOP container")
	}
	if _, err := Probe(data); err == nil {
		t.Fatal("Probe accepted a zero-GOP container")
	}
	farm := Farm{Nodes: []string{"dn0", "dn1"}}
	if _, err := farm.ConvertMulti(data, dstSpec()); err == nil {
		t.Fatal("ConvertMulti accepted a zero-GOP container")
	}
	if _, err := Split(data, 4); err == nil {
		t.Fatal("Split accepted a zero-GOP container")
	}
	if got := partition(0, 4); got != nil {
		t.Fatalf("partition(0, 4) = %v, want nil", got)
	}
	if got := partition(5, 0); got != nil {
		t.Fatalf("partition(5, 0) = %v, want nil", got)
	}
}
