package videodb

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := New()
	if err := db.CreateTable("videos",
		Column{Name: "title", Type: TString},
		Column{Name: "uploader", Type: TInt, Indexed: true},
	); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("videos", Row{
			"title": fmt.Sprintf("video %d cloud dance", i), "uploader": int64(i % 100),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkInsert measures typed-row insertion with index maintenance.
func BenchmarkInsert(b *testing.B) {
	db := New()
	db.CreateTable("videos",
		Column{Name: "title", Type: TString},
		Column{Name: "uploader", Type: TInt, Indexed: true},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("videos", Row{"title": "t", "uploader": int64(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedSelect measures hash-index equality lookup on 10k rows.
func BenchmarkIndexedSelect(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Select("videos", "uploader", int64(i%100))
		if err != nil || len(rows) == 0 {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkSubstringScan measures the LIKE-scan baseline on 10k rows.
func BenchmarkSubstringScan(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.ScanSubstring("videos", "title", "dance")
		if err != nil || len(rows) == 0 {
			b.Fatal("scan failed")
		}
	}
}
