package videodb

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := New()
	if err := db.CreateTable("videos",
		Column{Name: "title", Type: TString},
		Column{Name: "uploader", Type: TInt, Indexed: true},
	); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("videos", Row{
			"title": fmt.Sprintf("video %d cloud dance", i), "uploader": int64(i % 100),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkInsert measures typed-row insertion with index maintenance.
func BenchmarkInsert(b *testing.B) {
	db := New()
	db.CreateTable("videos",
		Column{Name: "title", Type: TString},
		Column{Name: "uploader", Type: TInt, Indexed: true},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("videos", Row{"title": "t", "uploader": int64(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedSelect measures hash-index equality lookup on 10k rows.
func BenchmarkIndexedSelect(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Select("videos", "uploader", int64(i%100))
		if err != nil || len(rows) == 0 {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkSubstringScan measures the LIKE-scan baseline on 10k rows.
func BenchmarkSubstringScan(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.ScanSubstring("videos", "title", "dance")
		if err != nil || len(rows) == 0 {
			b.Fatal("scan failed")
		}
	}
}

// BenchmarkScanLastVsScan contrasts the home page's two rebuild plans over a
// 10k-row catalog: the full-table Scan (copy every row, then keep 10) against
// ScanLast's bounded reverse scan (copy exactly 10). The gap is the per-request
// cost PR 7 removed from the recent-uploads rebuild.
func BenchmarkScanLastVsScan(b *testing.B) {
	db := benchDB(b, 10_000)
	b.Run("scan_all_keep_10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Scan("videos", func(Row) bool { return true })
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) < 10 {
				b.Fatal("short scan")
			}
			rows = rows[len(rows)-10:]
			_ = rows
		}
	})
	b.Run("scanlast_10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.ScanLast("videos", 10)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != 10 {
				b.Fatal("short scanlast")
			}
		}
	})
}

// BenchmarkShardedScatter measures the bounded-concurrency fan-in paths the
// frontend fleet rides: indexed select and bounded recent-list scan across
// 4 shards.
func BenchmarkShardedScatter(b *testing.B) {
	s := NewSharded(4)
	if err := s.CreateTable("videos",
		Column{Name: "title", Type: TString},
		Column{Name: "uploader", Type: TInt, Indexed: true},
	); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if _, err := s.Insert("videos", Row{
			"title": fmt.Sprintf("video %d cloud dance", i), "uploader": int64(i % 100),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("select_indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := s.Select("videos", "uploader", int64(i%100))
			if err != nil || len(rows) == 0 {
				b.Fatalf("%d rows, %v", len(rows), err)
			}
		}
	})
	b.Run("scanlast_10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := s.ScanLast("videos", 10)
			if err != nil || len(rows) != 10 {
				b.Fatalf("%d rows, %v", len(rows), err)
			}
		}
	})
}
