// ShardedDB scales the metadata tier horizontally: rows are hashed across N
// independent DB shards by primary key, so writes and id-addressed reads
// touch exactly one shard while search/home/scan queries fan out across all
// of them with bounded concurrency. This is the million-user growth path of
// the paper's single MySQL instance — the same schema, cut into hash
// buckets a fleet of frontends can hammer without convoying on one lock.
//
// Placement is a pure function of the row id (splitmix64 mod shard count),
// so a restart — or a second process building the same store — reproduces
// the exact same layout with no rebalance: determinism the fan-in tests
// gate. Ids are assigned by the router from a per-table sequence, never by
// the shards, keeping them globally unique.
package videodb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"videocloud/internal/metrics"
)

// defaultFanIn bounds concurrent per-shard queries during scatter-gather.
// Four in flight keeps tail latency low without stampeding a large shard set
// from every request.
const defaultFanIn = 4

// ShardedDB routes Store operations across N DB shards. Safe for concurrent
// use.
type ShardedDB struct {
	shards []Store
	fanIn  int

	// seq assigns globally unique ids per table (the shards' own
	// auto-increment is bypassed via InsertAt).
	seqMu sync.Mutex
	seq   map[string]*atomic.Int64

	// uniqueMu serialises check-then-insert on tables with unique columns:
	// per-shard unique indexes cannot see a duplicate landing on a sibling
	// shard, so the router checks cross-shard under this lock.
	uniqueMu   sync.Mutex
	uniqueCols map[string][]string

	// Optional instrumentation (SetMetrics): per-shard query latency plus
	// scatter fan-in counters.
	shardLatency []*metrics.Histogram
	scatters     *metrics.Counter
	scatterErrs  *metrics.Counter
}

// NewSharded returns a store of n empty shards (n >= 1).
func NewSharded(n int) *ShardedDB {
	if n < 1 {
		panic(fmt.Sprintf("videodb: NewSharded(%d)", n))
	}
	shards := make([]Store, n)
	for i := range shards {
		shards[i] = New()
	}
	return NewShardedFrom(shards)
}

// NewShardedFrom builds the router over caller-supplied shards — the test
// seam for fault injection (wrap one shard in an erroring Store) and for
// reopening an existing layout.
func NewShardedFrom(shards []Store) *ShardedDB {
	if len(shards) == 0 {
		panic("videodb: NewShardedFrom with no shards")
	}
	return &ShardedDB{
		shards:     shards,
		fanIn:      defaultFanIn,
		seq:        make(map[string]*atomic.Int64),
		uniqueCols: make(map[string][]string),
	}
}

// Shards returns the shard count.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// Shard exposes shard i (experiments inspect per-shard balance).
func (s *ShardedDB) Shard(i int) Store { return s.shards[i] }

// SetFanIn bounds scatter-gather concurrency (default 4, clamped to >= 1).
func (s *ShardedDB) SetFanIn(k int) {
	if k < 1 {
		k = 1
	}
	s.fanIn = k
}

// SetMetrics points per-shard latency histograms (videodb_shard<i>_seconds)
// and scatter counters at reg. Call before serving traffic.
func (s *ShardedDB) SetMetrics(reg *metrics.Registry) {
	s.shardLatency = make([]*metrics.Histogram, len(s.shards))
	for i := range s.shards {
		s.shardLatency[i] = reg.Histogram(fmt.Sprintf("videodb_shard%d_seconds", i))
	}
	s.scatters = reg.Counter("videodb_scatters")
	s.scatterErrs = reg.Counter("videodb_scatter_errors")
}

// splitmix64 is the id mixer behind placement: a full-avalanche finalizer so
// sequential ids spread uniformly over shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardOf returns the shard index owning id — a pure function of (id, shard
// count), identical across restarts.
func (s *ShardedDB) ShardOf(id int64) int {
	return int(splitmix64(uint64(id)) % uint64(len(s.shards)))
}

func (s *ShardedDB) owner(id int64) Store { return s.shards[s.ShardOf(id)] }

// observe records a shard-local query latency when metrics are armed.
func (s *ShardedDB) observe(shard int, start time.Time) {
	if s.shardLatency != nil {
		s.shardLatency[shard].ObserveDuration(time.Since(start))
	}
}

// CreateTable declares the table on every shard and starts its id sequence.
func (s *ShardedDB) CreateTable(name string, cols ...Column) error {
	for _, sh := range s.shards {
		if err := sh.CreateTable(name, cols...); err != nil {
			return err
		}
	}
	s.seqMu.Lock()
	if _, ok := s.seq[name]; !ok {
		s.seq[name] = &atomic.Int64{}
	}
	var unique []string
	for _, c := range cols {
		if c.Unique {
			unique = append(unique, c.Name)
		}
	}
	s.uniqueCols[name] = unique
	s.seqMu.Unlock()
	return nil
}

// nextID draws the next global id for table.
func (s *ShardedDB) nextID(table string) (int64, error) {
	s.seqMu.Lock()
	seq, ok := s.seq[table]
	s.seqMu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	return seq.Add(1), nil
}

// bumpSeq keeps the sequence ahead of an explicitly placed id.
func (s *ShardedDB) bumpSeq(table string, id int64) {
	s.seqMu.Lock()
	seq, ok := s.seq[table]
	s.seqMu.Unlock()
	if !ok {
		return
	}
	for {
		cur := seq.Load()
		if cur >= id || seq.CompareAndSwap(cur, id) {
			return
		}
	}
}

// checkUniqueAcrossShards rejects a row whose unique-column value exists on
// any shard. Caller holds uniqueMu when the table has unique columns.
func (s *ShardedDB) checkUniqueAcrossShards(table string, row Row, selfID int64) error {
	s.seqMu.Lock()
	unique := s.uniqueCols[table]
	s.seqMu.Unlock()
	for _, col := range unique {
		v, ok := row[col]
		if !ok {
			// Insert defaults the column to its zero value; collide on that.
			v = zeroOf(col, table, s.shards[0])
		}
		rows, err := s.Select(table, col, v)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if id, _ := r["id"].(int64); id != selfID {
				return fmt.Errorf("%w: %s.%s = %v", ErrUnique, table, col, v)
			}
		}
	}
	return nil
}

// zeroOf resolves the zero value a shard would default col to. Falls back to
// "" (the only unique column in this schema is a string) when the shard
// cannot be asked.
func zeroOf(col, table string, sh Store) any {
	db, ok := sh.(*DB)
	if !ok {
		return ""
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(table)
	if err != nil {
		return ""
	}
	switch t.cols[col].Type {
	case TInt:
		return int64(0)
	case TBool:
		return false
	case TFloat:
		return float64(0)
	default:
		return ""
	}
}

// Insert assigns a global id, hashes it to a shard, and stores the row
// there. Unique columns are enforced across the whole shard set.
func (s *ShardedDB) Insert(table string, row Row) (int64, error) {
	s.seqMu.Lock()
	unique := len(s.uniqueCols[table]) > 0
	s.seqMu.Unlock()
	if unique {
		s.uniqueMu.Lock()
		defer s.uniqueMu.Unlock()
		if err := s.checkUniqueAcrossShards(table, row, 0); err != nil {
			return 0, err
		}
	}
	id, err := s.nextID(table)
	if err != nil {
		return 0, err
	}
	shard := s.ShardOf(id)
	start := time.Now()
	err = s.shards[shard].InsertAt(table, id, row)
	s.observe(shard, start)
	if err != nil {
		return 0, err
	}
	return id, nil
}

// InsertAt places a row under an explicit id on its hash-owned shard.
func (s *ShardedDB) InsertAt(table string, id int64, row Row) error {
	if err := s.owner(id).InsertAt(table, id, row); err != nil {
		return err
	}
	s.bumpSeq(table, id)
	return nil
}

// RawPut stores an unvalidated row (the schema-drift fault injector) under a
// fresh global id on its hash-owned shard.
func (s *ShardedDB) RawPut(table string, row Row) (int64, error) {
	id, err := s.nextID(table)
	if err != nil {
		return 0, err
	}
	if err := s.owner(id).RawPutAt(table, id, row); err != nil {
		return 0, err
	}
	return id, nil
}

// RawPutAt stores an unvalidated row under an explicit id.
func (s *ShardedDB) RawPutAt(table string, id int64, row Row) error {
	if err := s.owner(id).RawPutAt(table, id, row); err != nil {
		return err
	}
	s.bumpSeq(table, id)
	return nil
}

// Get reads the row from its hash-owned shard.
func (s *ShardedDB) Get(table string, id int64) (Row, error) {
	shard := s.ShardOf(id)
	start := time.Now()
	row, err := s.shards[shard].Get(table, id)
	s.observe(shard, start)
	return row, err
}

// Update modifies the row on its hash-owned shard, re-checking unique
// columns fleet-wide first.
func (s *ShardedDB) Update(table string, id int64, changes Row) error {
	s.seqMu.Lock()
	unique := s.uniqueCols[table]
	s.seqMu.Unlock()
	touchesUnique := false
	for _, col := range unique {
		if _, ok := changes[col]; ok {
			touchesUnique = true
			break
		}
	}
	if touchesUnique {
		s.uniqueMu.Lock()
		defer s.uniqueMu.Unlock()
		if err := s.checkUniqueAcrossShards(table, changes, id); err != nil {
			return err
		}
	}
	shard := s.ShardOf(id)
	start := time.Now()
	err := s.shards[shard].Update(table, id, changes)
	s.observe(shard, start)
	return err
}

// Delete removes the row from its hash-owned shard.
func (s *ShardedDB) Delete(table string, id int64) error {
	return s.owner(id).Delete(table, id)
}

// scatter runs fn against every shard with bounded concurrency and collects
// per-shard results. Any shard error fails the whole operation — partial
// fan-in results are never returned as if they were complete.
func (s *ShardedDB) scatter(fn func(i int, sh Store) ([]Row, error)) ([][]Row, error) {
	if s.scatters != nil {
		s.scatters.Inc()
	}
	results := make([][]Row, len(s.shards))
	errs := make([]error, len(s.shards))
	sem := make(chan struct{}, s.fanIn)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			results[i], errs[i] = fn(i, s.shards[i])
			s.observe(i, start)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if s.scatterErrs != nil {
				s.scatterErrs.Inc()
			}
			return nil, err
		}
	}
	return results, nil
}

// mergeByID flattens per-shard result sets into one id-sorted slice.
func mergeByID(parts [][]Row) []Row {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]Row, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := out[i]["id"].(int64)
		b, _ := out[j]["id"].(int64)
		return a < b
	})
	return out
}

// Select fans col == value out across shards (id lookups route directly).
func (s *ShardedDB) Select(table, col string, value any) ([]Row, error) {
	if col == "id" {
		if id, ok := value.(int64); ok {
			row, err := s.Get(table, id)
			if errors.Is(err, ErrNoRow) {
				return nil, nil // Select semantics: no match is empty, not an error
			}
			if err != nil {
				return nil, err
			}
			return []Row{row}, nil
		}
	}
	parts, err := s.scatter(func(_ int, sh Store) ([]Row, error) {
		return sh.Select(table, col, value)
	})
	if err != nil {
		return nil, err
	}
	return mergeByID(parts), nil
}

// SelectOne returns the lowest-id row matching col == value, or ErrNoRow.
func (s *ShardedDB) SelectOne(table, col string, value any) (Row, error) {
	rows, err := s.Select(table, col, value)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: %s where %s = %v", ErrNoRow, table, col, value)
	}
	return rows[0], nil
}

// Scan fans the predicate out across shards and merges by id.
func (s *ShardedDB) Scan(table string, pred func(Row) bool) ([]Row, error) {
	parts, err := s.scatter(func(_ int, sh Store) ([]Row, error) {
		return sh.Scan(table, pred)
	})
	if err != nil {
		return nil, err
	}
	return mergeByID(parts), nil
}

// ScanLast asks every shard for its n newest rows and keeps the n globally
// newest — each shard's bounded reverse scan keeps the fan-in O(shards * n).
func (s *ShardedDB) ScanLast(table string, n int) ([]Row, error) {
	if n <= 0 {
		return nil, nil
	}
	parts, err := s.scatter(func(_ int, sh Store) ([]Row, error) {
		return sh.ScanLast(table, n)
	})
	if err != nil {
		return nil, err
	}
	merged := mergeByID(parts)
	if len(merged) > n {
		merged = merged[len(merged)-n:]
	}
	// ScanLast contract: newest first.
	for i, j := 0, len(merged)-1; i < j; i, j = i+1, j-1 {
		merged[i], merged[j] = merged[j], merged[i]
	}
	return merged, nil
}

// ScanSubstring fans the LIKE '%needle%' baseline out across shards.
func (s *ShardedDB) ScanSubstring(table, col, needle string) ([]Row, error) {
	parts, err := s.scatter(func(_ int, sh Store) ([]Row, error) {
		return sh.ScanSubstring(table, col, needle)
	})
	if err != nil {
		return nil, err
	}
	return mergeByID(parts), nil
}

// Count sums row counts across shards.
func (s *ShardedDB) Count(table string) (int, error) {
	total := 0
	for _, sh := range s.shards {
		n, err := sh.Count(table)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Tables lists table names (identical on every shard by construction).
func (s *ShardedDB) Tables() []string { return s.shards[0].Tables() }
