package videodb

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"videocloud/internal/metrics"
)

func videosSchema() []Column {
	return []Column{
		{Name: "title", Type: TString},
		{Name: "uploader_id", Type: TInt, Indexed: true},
		{Name: "views", Type: TInt},
	}
}

func shardedVideos(t *testing.T, n, rows int) *ShardedDB {
	t.Helper()
	s := NewSharded(n)
	if err := s.CreateTable("videos", videosSchema()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := s.Insert("videos", Row{
			"title": fmt.Sprintf("video %d cloud", i), "uploader_id": int64(i % 7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestShardedRoundTrip(t *testing.T) {
	s := shardedVideos(t, 4, 50)
	// Ids are globally unique and every row is readable through the router.
	seen := map[int64]bool{}
	rows, err := s.Scan("videos", func(Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("scan returned %d rows, want 50", len(rows))
	}
	for i, r := range rows {
		id, _ := r["id"].(int64)
		if seen[id] {
			t.Fatalf("duplicate id %d across shards", id)
		}
		seen[id] = true
		if i > 0 {
			prev, _ := rows[i-1]["id"].(int64)
			if prev >= id {
				t.Fatalf("scan not id-sorted: %d then %d", prev, id)
			}
		}
		got, gerr := s.Get("videos", id)
		if gerr != nil {
			t.Fatalf("Get(%d): %v", id, gerr)
		}
		if got["title"] != r["title"] {
			t.Fatalf("Get(%d) = %v, scan saw %v", id, got, r)
		}
	}
	// Rows actually spread: no shard holds everything.
	for i := 0; i < s.Shards(); i++ {
		n, _ := s.Shard(i).Count("videos")
		if n == 50 {
			t.Fatalf("shard %d holds all rows — no spreading", i)
		}
		if n == 0 {
			t.Logf("shard %d empty at 50 rows (possible but unlikely)", i)
		}
	}
	if n, _ := s.Count("videos"); n != 50 {
		t.Fatalf("Count = %d, want 50", n)
	}
	// Indexed select fans in across shards.
	mine, err := s.Select("videos", "uploader_id", int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(mine) != 7 { // i % 7 == 3 for i in [0,50): 3,10,17,24,31,38,45
		t.Fatalf("Select(uploader_id=3) = %d rows", len(mine))
	}
}

func TestShardedUpdateDelete(t *testing.T) {
	s := shardedVideos(t, 3, 12)
	if err := s.Update("videos", 5, Row{"views": int64(9)}); err != nil {
		t.Fatal(err)
	}
	row, err := s.Get("videos", 5)
	if err != nil || row["views"] != int64(9) {
		t.Fatalf("after update: %v, %v", row, err)
	}
	if err := s.Delete("videos", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("videos", 5); !errors.Is(err, ErrNoRow) {
		t.Fatalf("Get after delete = %v, want ErrNoRow", err)
	}
	if n, _ := s.Count("videos"); n != 11 {
		t.Fatalf("Count after delete = %d", n)
	}
}

func TestShardedUniqueAcrossShards(t *testing.T) {
	s := NewSharded(4)
	if err := s.CreateTable("users",
		Column{Name: "username", Type: TString, Unique: true},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("users", Row{"username": "alice"}); err != nil {
		t.Fatal(err)
	}
	// A duplicate username must be rejected even when its id hashes to a
	// different shard than alice's — per-shard indexes cannot see that.
	var dup int
	for i := 0; i < 20; i++ {
		_, err := s.Insert("users", Row{"username": "alice"})
		if errors.Is(err, ErrUnique) {
			dup++
			continue
		}
		t.Fatalf("insert %d: err = %v, want ErrUnique", i, err)
	}
	if dup != 20 {
		t.Fatalf("only %d/20 duplicates rejected", dup)
	}
	// Update to a taken name is rejected; to a fresh one allowed.
	id, err := s.Insert("users", Row{"username": "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update("users", id, Row{"username": "alice"}); !errors.Is(err, ErrUnique) {
		t.Fatalf("update to taken name: %v, want ErrUnique", err)
	}
	if err := s.Update("users", id, Row{"username": "carol"}); err != nil {
		t.Fatal(err)
	}
	// Updating a row's unique column to its own current value is a no-op,
	// not a collision.
	if err := s.Update("users", id, Row{"username": "carol"}); err != nil {
		t.Fatalf("self-update: %v", err)
	}
}

// TestShardedEmptyShard drives fan-in over a layout where at least one shard
// holds no rows for the table: results must be complete and error-free.
func TestShardedEmptyShard(t *testing.T) {
	s := NewSharded(8)
	if err := s.CreateTable("videos", videosSchema()...); err != nil {
		t.Fatal(err)
	}
	// Two rows over eight shards: at least six shards are empty.
	for i := 0; i < 2; i++ {
		if _, err := s.Insert("videos", Row{"title": "x"}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Scan("videos", func(Row) bool { return true })
	if err != nil || len(rows) != 2 {
		t.Fatalf("scan over mostly-empty shards: %d rows, %v", len(rows), err)
	}
	last, err := s.ScanLast("videos", 10)
	if err != nil || len(last) != 2 {
		t.Fatalf("ScanLast over mostly-empty shards: %d rows, %v", len(last), err)
	}
	hits, err := s.ScanSubstring("videos", "title", "x")
	if err != nil || len(hits) != 2 {
		t.Fatalf("ScanSubstring over mostly-empty shards: %d rows, %v", len(hits), err)
	}
	if n, _ := s.Count("videos"); n != 2 {
		t.Fatalf("Count = %d", n)
	}
}

// faultStore wraps a shard and fails scan-family calls after arm is set —
// the mid-scatter failure mode (a shard going down while siblings answer).
type faultStore struct {
	Store
	mu  sync.Mutex
	arm bool
}

func (f *faultStore) failing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.arm
}

var errShardDown = errors.New("shard down")

func (f *faultStore) Scan(table string, pred func(Row) bool) ([]Row, error) {
	if f.failing() {
		return nil, errShardDown
	}
	return f.Store.Scan(table, pred)
}

func (f *faultStore) ScanLast(table string, n int) ([]Row, error) {
	if f.failing() {
		return nil, errShardDown
	}
	return f.Store.ScanLast(table, n)
}

func (f *faultStore) Select(table, col string, value any) ([]Row, error) {
	if f.failing() {
		return nil, errShardDown
	}
	return f.Store.Select(table, col, value)
}

// TestShardedScatterError arms a failure on one shard and asserts every
// fan-in operation reports the error instead of silently returning the
// surviving shards' partial results.
func TestShardedScatterError(t *testing.T) {
	fault := &faultStore{Store: New()}
	shards := []Store{New(), fault, New(), New()}
	s := NewShardedFrom(shards)
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)
	if err := s.CreateTable("videos", videosSchema()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Insert("videos", Row{"title": "t", "uploader_id": int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Sanity: healthy fan-in sees all rows.
	rows, err := s.Scan("videos", func(Row) bool { return true })
	if err != nil || len(rows) != 40 {
		t.Fatalf("healthy scan: %d rows, %v", len(rows), err)
	}
	fault.mu.Lock()
	fault.arm = true
	fault.mu.Unlock()
	if _, err := s.Scan("videos", func(Row) bool { return true }); !errors.Is(err, errShardDown) {
		t.Fatalf("Scan with downed shard: %v, want errShardDown", err)
	}
	if _, err := s.ScanLast("videos", 10); !errors.Is(err, errShardDown) {
		t.Fatalf("ScanLast with downed shard: %v, want errShardDown", err)
	}
	if _, err := s.Select("videos", "uploader_id", int64(1)); !errors.Is(err, errShardDown) {
		t.Fatalf("Select with downed shard: %v, want errShardDown", err)
	}
	if got := reg.Counter("videodb_scatter_errors").Value(); got < 3 {
		t.Fatalf("scatter error counter = %d, want >= 3", got)
	}
	// Id-addressed ops to healthy shards keep working.
	healthy := int64(0)
	for id := int64(1); id <= 40; id++ {
		if s.ShardOf(id) != 1 {
			healthy = id
			break
		}
	}
	if _, err := s.Get("videos", healthy); err != nil {
		t.Fatalf("Get on healthy shard during sibling outage: %v", err)
	}
}

// TestShardedPlacementDeterminism rebuilds the store from scratch twice and
// requires byte-identical shard layouts — restarts must not rebalance.
func TestShardedPlacementDeterminism(t *testing.T) {
	build := func() *ShardedDB {
		s := NewSharded(5)
		if err := s.CreateTable("videos", videosSchema()...); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if _, err := s.Insert("videos", Row{"title": fmt.Sprintf("v%d", i)}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	a, b := build(), build()
	for i := 0; i < a.Shards(); i++ {
		ra, _ := a.Shard(i).Scan("videos", func(Row) bool { return true })
		rb, _ := b.Shard(i).Scan("videos", func(Row) bool { return true })
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("shard %d layout differs across rebuilds", i)
		}
	}
	// ShardOf is a pure function of the id: every row sits on exactly the
	// shard the hash names, on both rebuilds.
	for id := int64(1); id <= 64; id++ {
		want := a.ShardOf(id)
		if got := b.ShardOf(id); got != want {
			t.Fatalf("ShardOf(%d) differs across instances: %d vs %d", id, want, got)
		}
		if _, err := a.Shard(want).Get("videos", id); err != nil {
			t.Fatalf("id %d not on its ShardOf shard %d: %v", id, want, err)
		}
	}
}

// TestShardedExplicitPlacement pins InsertAt/RawPutAt rows to their hash
// shard and keeps the sequence ahead of explicit ids.
func TestShardedExplicitPlacement(t *testing.T) {
	s := NewSharded(3)
	if err := s.CreateTable("videos", videosSchema()...); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertAt("videos", 100, Row{"title": "pinned"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shard(s.ShardOf(100)).Get("videos", 100); err != nil {
		t.Fatalf("pinned row not on its hash shard: %v", err)
	}
	// The global sequence must jump past 100 so the next Insert cannot
	// collide.
	id, err := s.Insert("videos", Row{"title": "next"})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 100 {
		t.Fatalf("Insert after InsertAt(100) assigned id %d", id)
	}
	if err := s.RawPutAt("videos", 200, Row{"title": 7}); err != nil { // raw: wrong type allowed
		t.Fatal(err)
	}
	row, err := s.Get("videos", 200)
	if err != nil || row["title"] != 7 {
		t.Fatalf("RawPutAt row: %v, %v", row, err)
	}
}

func TestShardedScanLastOrder(t *testing.T) {
	s := shardedVideos(t, 4, 30)
	last, err := s.ScanLast("videos", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 10 {
		t.Fatalf("ScanLast(10) = %d rows", len(last))
	}
	for i, r := range last {
		id, _ := r["id"].(int64)
		if want := int64(30 - i); id != want {
			t.Fatalf("ScanLast[%d] id = %d, want %d (newest first)", i, id, want)
		}
	}
}

func TestShardedMetrics(t *testing.T) {
	s := NewSharded(3)
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)
	if err := s.CreateTable("videos", videosSchema()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := s.Insert("videos", Row{"title": "m"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scan("videos", func(Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("videodb_scatters").Value(); got != 1 {
		t.Fatalf("scatters = %d, want 1", got)
	}
	var observed int64
	for i := 0; i < 3; i++ {
		observed += reg.Histogram(fmt.Sprintf("videodb_shard%d_seconds", i)).Count()
	}
	// 9 single-shard inserts + 3 per-shard scatter legs.
	if observed != 12 {
		t.Fatalf("per-shard latency observations = %d, want 12", observed)
	}
}

func TestShardedConcurrent(t *testing.T) {
	s := shardedVideos(t, 4, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id, err := s.Insert("videos", Row{"title": fmt.Sprintf("w%d-%d", w, i)})
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, err := s.Get("videos", id); err != nil {
					t.Errorf("get %d: %v", id, err)
					return
				}
				if i%5 == 0 {
					if _, err := s.ScanLast("videos", 10); err != nil {
						t.Errorf("scanlast: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := s.Count("videos"); n != 200 {
		t.Fatalf("Count = %d, want 200", n)
	}
}
