// Package videodb is the MySQL stand-in of the paper's §IV: "we use MySQL
// in database to store a user's account, passwords, and film information."
//
// It is a small embedded relational store: typed columns, auto-increment
// primary keys, unique constraints, hash secondary indexes for equality
// lookups, and full-table scans with predicates. The scan path doubles as
// the experiment E4 baseline — "the traditional way which searches directly
// in the database" that the cloud search engine is compared against.
package videodb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ColType is a column's type.
type ColType int

// Column types.
const (
	TInt ColType = iota
	TString
	TBool
	TFloat
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "int"
	case TString:
		return "string"
	case TBool:
		return "bool"
	case TFloat:
		return "float"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column declares one field of a table.
type Column struct {
	Name string
	Type ColType
	// Unique enforces per-column uniqueness (e.g. usernames).
	Unique bool
	// Indexed builds a hash index for fast equality Select.
	Indexed bool
}

// Row maps column names to values. The primary key is the reserved column
// "id" (int64), assigned on insert.
type Row map[string]any

// Store is the metadata-store surface the serving tier programs against.
// *DB implements it directly; *ShardedDB implements it by routing
// id-addressed operations to one shard and fanning scans out across all of
// them. Tests inject faults by wrapping a Store.
type Store interface {
	CreateTable(name string, cols ...Column) error
	Insert(table string, row Row) (int64, error)
	InsertAt(table string, id int64, row Row) error
	RawPut(table string, row Row) (int64, error)
	RawPutAt(table string, id int64, row Row) error
	Get(table string, id int64) (Row, error)
	Update(table string, id int64, changes Row) error
	Delete(table string, id int64) error
	Select(table, col string, value any) ([]Row, error)
	SelectOne(table, col string, value any) (Row, error)
	Scan(table string, pred func(Row) bool) ([]Row, error)
	ScanLast(table string, n int) ([]Row, error)
	ScanSubstring(table, col, needle string) ([]Row, error)
	Count(table string) (int, error)
	Tables() []string
}

// Errors returned by the store.
var (
	ErrNoTable      = errors.New("videodb: no such table")
	ErrTableExists  = errors.New("videodb: table exists")
	ErrNoRow        = errors.New("videodb: no such row")
	ErrBadColumn    = errors.New("videodb: unknown column")
	ErrTypeMismatch = errors.New("videodb: value type mismatch")
	ErrUnique       = errors.New("videodb: unique constraint violation")
	ErrDupID        = errors.New("videodb: row id already taken")
)

type table struct {
	name    string
	cols    map[string]Column
	order   []string
	rows    map[int64]Row
	nextID  int64
	indexes map[string]map[any][]int64 // col -> value -> ids
}

// DB is an embedded multi-table store, safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable declares a table. The "id" primary key is implicit and must
// not be declared.
func (db *DB) CreateTable(name string, cols ...Column) error {
	if name == "" {
		return fmt.Errorf("videodb: empty table name")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	t := &table{
		name:    name,
		cols:    make(map[string]Column, len(cols)),
		rows:    make(map[int64]Row),
		indexes: make(map[string]map[any][]int64),
	}
	for _, c := range cols {
		if c.Name == "" || c.Name == "id" {
			return fmt.Errorf("videodb: bad column name %q", c.Name)
		}
		if _, dup := t.cols[c.Name]; dup {
			return fmt.Errorf("videodb: duplicate column %q", c.Name)
		}
		t.cols[c.Name] = c
		t.order = append(t.order, c.Name)
		if c.Unique || c.Indexed {
			t.indexes[c.Name] = make(map[any][]int64)
		}
	}
	db.tables[name] = t
	return nil
}

func (db *DB) table(name string) (*table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

func (t *table) checkValue(col string, v any) error {
	c, ok := t.cols[col]
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrBadColumn, t.name, col)
	}
	okType := false
	switch c.Type {
	case TInt:
		_, okType = v.(int64)
	case TString:
		_, okType = v.(string)
	case TBool:
		_, okType = v.(bool)
	case TFloat:
		_, okType = v.(float64)
	}
	if !okType {
		return fmt.Errorf("%w: %s.%s wants %v, got %T", ErrTypeMismatch, t.name, col, c.Type, v)
	}
	return nil
}

// validateFull type-checks row and returns a copy with zero-value defaults
// for every undeclared column. Caller holds the write lock.
func (t *table) validateFull(row Row) (Row, error) {
	full := make(Row, len(t.cols))
	for col, v := range row {
		if err := t.checkValue(col, v); err != nil {
			return nil, err
		}
		full[col] = v
	}
	for _, col := range t.order {
		if _, ok := full[col]; ok {
			continue
		}
		switch t.cols[col].Type {
		case TInt:
			full[col] = int64(0)
		case TString:
			full[col] = ""
		case TBool:
			full[col] = false
		case TFloat:
			full[col] = float64(0)
		}
	}
	return full, nil
}

// checkUnique rejects the row when a unique column collides with an existing
// row. Caller holds the write lock.
func (t *table) checkUnique(full Row) error {
	for col := range t.indexes {
		if t.cols[col].Unique {
			if ids := t.indexes[col][full[col]]; len(ids) > 0 {
				return fmt.Errorf("%w: %s.%s = %v", ErrUnique, t.name, col, full[col])
			}
		}
	}
	return nil
}

// put stores full under id and maintains the indexes. Caller holds the write
// lock and has validated the row.
func (t *table) put(id int64, full Row) {
	full["id"] = id
	t.rows[id] = full
	for col, idx := range t.indexes {
		idx[full[col]] = append(idx[full[col]], id)
	}
}

// Insert adds a row and returns its assigned id. Missing columns default to
// zero values; unknown columns or wrong types fail.
func (db *DB) Insert(tableName string, row Row) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	full, err := t.validateFull(row)
	if err != nil {
		return 0, err
	}
	if err := t.checkUnique(full); err != nil {
		return 0, err
	}
	t.nextID++
	t.put(t.nextID, full)
	return t.nextID, nil
}

// InsertAt adds a row under a caller-chosen primary key — the placement
// primitive the sharding router uses to keep ids globally unique while each
// shard stores only its hash bucket. The id must be positive and unused;
// auto-increment continues past it.
func (db *DB) InsertAt(tableName string, id int64, row Row) error {
	if id <= 0 {
		return fmt.Errorf("videodb: InsertAt id must be positive, got %d", id)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	if _, taken := t.rows[id]; taken {
		return fmt.Errorf("%w: %s[%d]", ErrDupID, tableName, id)
	}
	full, err := t.validateFull(row)
	if err != nil {
		return err
	}
	if err := t.checkUnique(full); err != nil {
		return err
	}
	if id > t.nextID {
		t.nextID = id
	}
	t.put(id, full)
	return nil
}

// RawPut stores a row verbatim, bypassing column and type validation, and
// returns the assigned id. It reproduces the real deployment's failure mode —
// a MySQL row written by an older binary or a drifted schema — so serving-
// path code can be tested against malformed rows that Insert would reject.
// Values destined for indexed columns must be comparable.
func (db *DB) RawPut(tableName string, row Row) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	full := copyRow(row)
	t.nextID++
	id := t.nextID
	full["id"] = id
	t.rows[id] = full
	for col, idx := range t.indexes {
		idx[full[col]] = append(idx[full[col]], id)
	}
	return id, nil
}

// RawPutAt is RawPut under a caller-chosen primary key (the sharding
// router's fault-injection placement path). The id must be positive and
// unused.
func (db *DB) RawPutAt(tableName string, id int64, row Row) error {
	if id <= 0 {
		return fmt.Errorf("videodb: RawPutAt id must be positive, got %d", id)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	if _, taken := t.rows[id]; taken {
		return fmt.Errorf("%w: %s[%d]", ErrDupID, tableName, id)
	}
	if id > t.nextID {
		t.nextID = id
	}
	t.put(id, copyRow(row))
	return nil
}

// Get returns a copy of the row with the given id.
func (db *DB) Get(tableName string, id int64) (Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(tableName)
	if err != nil {
		return nil, err
	}
	row, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s[%d]", ErrNoRow, tableName, id)
	}
	return copyRow(row), nil
}

func copyRow(r Row) Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Update overwrites the given columns of a row.
func (db *DB) Update(tableName string, id int64, changes Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	row, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("%w: %s[%d]", ErrNoRow, tableName, id)
	}
	for col, v := range changes {
		if err := t.checkValue(col, v); err != nil {
			return err
		}
	}
	// Unique checks against other rows.
	for col, v := range changes {
		if !t.cols[col].Unique {
			continue
		}
		for _, other := range t.indexes[col][v] {
			if other != id {
				return fmt.Errorf("%w: %s.%s = %v", ErrUnique, t.name, col, v)
			}
		}
	}
	for col, v := range changes {
		if idx, ok := t.indexes[col]; ok {
			old := row[col]
			idx[old] = removeID(idx[old], id)
			if len(idx[old]) == 0 {
				delete(idx, old)
			}
			idx[v] = append(idx[v], id)
		}
		row[col] = v
	}
	return nil
}

func removeID(ids []int64, id int64) []int64 {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// Delete removes a row.
func (db *DB) Delete(tableName string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	row, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("%w: %s[%d]", ErrNoRow, tableName, id)
	}
	for col, idx := range t.indexes {
		v := row[col]
		idx[v] = removeID(idx[v], id)
		if len(idx[v]) == 0 {
			delete(idx, v)
		}
	}
	delete(t.rows, id)
	return nil
}

// Select returns rows where col == value, using the hash index when one
// exists, else scanning. Results are sorted by id.
func (db *DB) Select(tableName, col string, value any) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(tableName)
	if err != nil {
		return nil, err
	}
	if col != "id" {
		if err := t.checkValue(col, value); err != nil {
			return nil, err
		}
	}
	var ids []int64
	if idx, ok := t.indexes[col]; ok {
		ids = append(ids, idx[value]...)
	} else {
		for id, row := range t.rows {
			if row[col] == value {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Row, 0, len(ids))
	for _, id := range ids {
		out = append(out, copyRow(t.rows[id]))
	}
	return out, nil
}

// SelectOne returns the single row where col == value, or ErrNoRow.
func (db *DB) SelectOne(tableName, col string, value any) (Row, error) {
	rows, err := db.Select(tableName, col, value)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: %s where %s = %v", ErrNoRow, tableName, col, value)
	}
	return rows[0], nil
}

// Scan returns every row matching the predicate, sorted by id — a full
// table scan, the query plan MySQL falls back to for LIKE '%word%' filters.
func (db *DB) Scan(tableName string, pred func(Row) bool) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(tableName)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Row
	for _, id := range ids {
		if pred(t.rows[id]) {
			out = append(out, copyRow(t.rows[id]))
		}
	}
	return out, nil
}

// ScanLast returns the n highest-id rows, newest first — the home page's
// "recent uploads" query. Unlike Scan it never copies more than n rows:
// candidate ids are selected with one pass over the key set (a bounded
// insertion into an n-slot window), so rebuild cost is O(rows) id
// comparisons plus O(n) row copies instead of a full-table materialisation.
func (db *DB) ScanLast(tableName string, n int) ([]Row, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(tableName)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	// top holds the n largest ids seen so far, descending.
	top := make([]int64, 0, n)
	for id := range t.rows {
		if len(top) == n && id <= top[n-1] {
			continue
		}
		i := sort.Search(len(top), func(i int) bool { return top[i] < id })
		if len(top) < n {
			top = append(top, 0)
		}
		copy(top[i+1:], top[i:])
		top[i] = id
	}
	out := make([]Row, 0, len(top))
	for _, id := range top {
		out = append(out, copyRow(t.rows[id]))
	}
	return out, nil
}

// ScanSubstring is the E4 baseline query: SELECT * FROM t WHERE col LIKE
// '%needle%' (case-insensitive), necessarily a full scan.
func (db *DB) ScanSubstring(tableName, col, needle string) ([]Row, error) {
	lower := strings.ToLower(needle)
	return db.Scan(tableName, func(r Row) bool {
		s, ok := r[col].(string)
		return ok && strings.Contains(strings.ToLower(s), lower)
	})
}

// Count returns the number of rows in a table.
func (db *DB) Count(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(tableName)
	if err != nil {
		return 0, err
	}
	return len(t.rows), nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
