package videodb

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func usersDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	err := db.CreateTable("users",
		Column{Name: "username", Type: TString, Unique: true},
		Column{Name: "password_hash", Type: TString},
		Column{Name: "email", Type: TString},
		Column{Name: "blocked", Type: TBool, Indexed: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInsertGet(t *testing.T) {
	db := usersDB(t)
	id, err := db.Insert("users", Row{"username": "alice", "email": "a@x"})
	if err != nil {
		t.Fatal(err)
	}
	row, err := db.Get("users", id)
	if err != nil {
		t.Fatal(err)
	}
	if row["username"] != "alice" || row["email"] != "a@x" {
		t.Fatalf("row = %v", row)
	}
	// Defaults applied.
	if row["blocked"] != false || row["password_hash"] != "" {
		t.Fatalf("defaults = %v", row)
	}
	// Returned row is a copy.
	row["username"] = "mallory"
	again, _ := db.Get("users", id)
	if again["username"] != "alice" {
		t.Fatal("Get aliases storage")
	}
}

func TestAutoIncrementIDs(t *testing.T) {
	db := usersDB(t)
	a, _ := db.Insert("users", Row{"username": "a"})
	b, _ := db.Insert("users", Row{"username": "b"})
	if b != a+1 {
		t.Fatalf("ids %d, %d", a, b)
	}
	db.Delete("users", b)
	c, _ := db.Insert("users", Row{"username": "c"})
	if c <= b {
		t.Fatalf("id reused after delete: %d", c)
	}
}

func TestUniqueConstraint(t *testing.T) {
	db := usersDB(t)
	db.Insert("users", Row{"username": "alice"})
	if _, err := db.Insert("users", Row{"username": "alice"}); !errors.Is(err, ErrUnique) {
		t.Fatalf("err = %v", err)
	}
	// Unique also enforced on update.
	id, _ := db.Insert("users", Row{"username": "bob"})
	if err := db.Update("users", id, Row{"username": "alice"}); !errors.Is(err, ErrUnique) {
		t.Fatalf("update err = %v", err)
	}
	// Updating to own value is fine.
	if err := db.Update("users", id, Row{"username": "bob"}); err != nil {
		t.Fatal(err)
	}
	// After delete, the name is free again.
	alice, _ := db.SelectOne("users", "username", "alice")
	db.Delete("users", alice["id"].(int64))
	if _, err := db.Insert("users", Row{"username": "alice"}); err != nil {
		t.Fatalf("reuse after delete: %v", err)
	}
}

func TestTypeChecking(t *testing.T) {
	db := usersDB(t)
	if _, err := db.Insert("users", Row{"username": 42}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Insert("users", Row{"nonexistent": "x"}); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v", err)
	}
	id, _ := db.Insert("users", Row{"username": "ok"})
	if err := db.Update("users", id, Row{"blocked": "yes"}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("update err = %v", err)
	}
}

func TestSelectByIndex(t *testing.T) {
	db := usersDB(t)
	for i := 0; i < 10; i++ {
		db.Insert("users", Row{"username": fmt.Sprintf("u%d", i), "blocked": i%2 == 0})
	}
	blocked, err := db.Select("users", "blocked", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocked) != 5 {
		t.Fatalf("%d blocked", len(blocked))
	}
	// Sorted by id.
	for i := 1; i < len(blocked); i++ {
		if blocked[i]["id"].(int64) <= blocked[i-1]["id"].(int64) {
			t.Fatal("not sorted by id")
		}
	}
	// Select on unindexed column falls back to scan.
	byEmail, err := db.Select("users", "email", "")
	if err != nil || len(byEmail) != 10 {
		t.Fatalf("scan select: %v, %d rows", err, len(byEmail))
	}
}

func TestSelectOne(t *testing.T) {
	db := usersDB(t)
	db.Insert("users", Row{"username": "alice"})
	row, err := db.SelectOne("users", "username", "alice")
	if err != nil || row["username"] != "alice" {
		t.Fatalf("%v %v", err, row)
	}
	if _, err := db.SelectOne("users", "username", "ghost"); !errors.Is(err, ErrNoRow) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	db := usersDB(t)
	id, _ := db.Insert("users", Row{"username": "alice", "blocked": false})
	db.Update("users", id, Row{"blocked": true})
	rows, _ := db.Select("users", "blocked", true)
	if len(rows) != 1 {
		t.Fatalf("index not updated: %v", rows)
	}
	rows, _ = db.Select("users", "blocked", false)
	if len(rows) != 0 {
		t.Fatalf("stale index entry: %v", rows)
	}
}

func TestDeleteAndErrors(t *testing.T) {
	db := usersDB(t)
	id, _ := db.Insert("users", Row{"username": "alice"})
	if err := db.Delete("users", id); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("users", id); !errors.Is(err, ErrNoRow) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := db.Get("users", id); !errors.Is(err, ErrNoRow) {
		t.Fatalf("get deleted: %v", err)
	}
	if _, err := db.Get("ghosts", 1); !errors.Is(err, ErrNoTable) {
		t.Fatalf("ghost table: %v", err)
	}
	if err := db.CreateTable("users"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("dup table: %v", err)
	}
	if err := db.CreateTable("bad", Column{Name: "id", Type: TInt}); err == nil {
		t.Fatal("reserved column accepted")
	}
	if err := db.CreateTable("bad2", Column{Name: "x", Type: TInt}, Column{Name: "x", Type: TInt}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestScanSubstring(t *testing.T) {
	db := New()
	db.CreateTable("videos",
		Column{Name: "title", Type: TString},
		Column{Name: "uploader", Type: TString, Indexed: true},
	)
	titles := []string{"Nobody MV", "Cloud lecture", "My holiday", "NOBODY dance cover", "cooking"}
	for _, title := range titles {
		db.Insert("videos", Row{"title": title, "uploader": "u"})
	}
	rows, err := db.ScanSubstring("videos", "title", "nobody")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("LIKE scan found %d rows", len(rows))
	}
	rows, _ = db.ScanSubstring("videos", "title", "zzz")
	if len(rows) != 0 {
		t.Fatal("false positives")
	}
}

func TestCountAndTables(t *testing.T) {
	db := usersDB(t)
	db.CreateTable("videos", Column{Name: "title", Type: TString})
	db.Insert("users", Row{"username": "a"})
	db.Insert("users", Row{"username": "b"})
	n, err := db.Count("users")
	if err != nil || n != 2 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	tabs := db.Tables()
	if len(tabs) != 2 || tabs[0] != "users" || tabs[1] != "videos" {
		t.Fatalf("Tables = %v", tabs)
	}
}

// Property: after any sequence of inserts/updates/deletes, Select via index
// equals Scan with the equivalent predicate.
func TestPropertyIndexMatchesScan(t *testing.T) {
	f := func(ops []uint8) bool {
		db := New()
		db.CreateTable("t",
			Column{Name: "k", Type: TInt, Indexed: true},
			Column{Name: "v", Type: TString},
		)
		var ids []int64
		for i, op := range ops {
			switch op % 4 {
			case 0, 1:
				id, err := db.Insert("t", Row{"k": int64(op % 5), "v": fmt.Sprint(i)})
				if err != nil {
					return false
				}
				ids = append(ids, id)
			case 2:
				if len(ids) > 0 {
					db.Update("t", ids[int(op)%len(ids)], Row{"k": int64(op % 7)})
				}
			case 3:
				if len(ids) > 0 {
					idx := int(op) % len(ids)
					db.Delete("t", ids[idx])
					ids = append(ids[:idx], ids[idx+1:]...)
				}
			}
		}
		for k := int64(0); k < 7; k++ {
			byIndex, err := db.Select("t", "k", k)
			if err != nil {
				return false
			}
			byScan, err := db.Scan("t", func(r Row) bool { return r["k"] == k })
			if err != nil {
				return false
			}
			if len(byIndex) != len(byScan) {
				return false
			}
			for i := range byIndex {
				if byIndex[i]["id"] != byScan[i]["id"] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRawPutBypassesValidation covers the fault-injection hook: a drifted
// row is stored verbatim, visible to readers, and cleanly deletable.
func TestRawPutBypassesValidation(t *testing.T) {
	db := New()
	if err := db.CreateTable("v",
		Column{Name: "title", Type: TString},
		Column{Name: "owner", Type: TInt, Indexed: true},
	); err != nil {
		t.Fatal(err)
	}
	id, err := db.RawPut("v", Row{"title": 42, "owner": "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	row, err := db.Get("v", id)
	if err != nil {
		t.Fatal(err)
	}
	if row["title"] != 42 || row["owner"] != "bogus" {
		t.Fatalf("row altered: %v", row)
	}
	// The drifted value is reachable through its index and removable.
	if rows, _ := db.Scan("v", func(r Row) bool { return true }); len(rows) != 1 {
		t.Fatalf("scan rows = %d", len(rows))
	}
	if err := db.Delete("v", id); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("v"); n != 0 {
		t.Fatalf("count after delete = %d", n)
	}
}

func TestScanLast(t *testing.T) {
	db := New()
	if err := db.CreateTable("videos", Column{Name: "title", Type: TString}); err != nil {
		t.Fatal(err)
	}
	// Empty table and n <= 0 are clean no-ops.
	if rows, err := db.ScanLast("videos", 10); err != nil || len(rows) != 0 {
		t.Fatalf("empty ScanLast: %v, %v", rows, err)
	}
	if rows, err := db.ScanLast("videos", 0); err != nil || rows != nil {
		t.Fatalf("ScanLast(0): %v, %v", rows, err)
	}
	if _, err := db.ScanLast("nope", 1); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table: %v", err)
	}
	for i := 1; i <= 25; i++ {
		if _, err := db.Insert("videos", Row{"title": fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.ScanLast("videos", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("ScanLast(10) = %d rows", len(rows))
	}
	for i, r := range rows {
		if want := int64(25 - i); r["id"] != want {
			t.Fatalf("rows[%d] id = %v, want %d (newest first)", i, r["id"], want)
		}
	}
	// Deleting the newest row keeps the window correct.
	if err := db.Delete("videos", 25); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.ScanLast("videos", 3)
	if len(rows) != 3 || rows[0]["id"] != int64(24) {
		t.Fatalf("after delete: %v", rows)
	}
	// n larger than the table returns everything, newest first.
	rows, _ = db.ScanLast("videos", 100)
	if len(rows) != 24 || rows[23]["id"] != int64(1) {
		t.Fatalf("oversized n: %d rows, tail %v", len(rows), rows[len(rows)-1])
	}
	// Returned rows are copies: mutation must not leak into the store.
	rows[0]["title"] = "mutated"
	orig, _ := db.Get("videos", 24)
	if orig["title"] == "mutated" {
		t.Fatal("ScanLast returned an aliased row")
	}
}
