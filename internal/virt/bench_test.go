package virt

import (
	"math/rand"
	"testing"
	"time"
)

// BenchmarkDirtyBitmapRandom measures the page-dirtying hot path the
// migration engine drives (1 GiB guest, uniform writes).
func BenchmarkDirtyBitmapRandom(b *testing.B) {
	m := NewGuestMemory(1 << 30)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DirtyRandom(4096, rng)
		if m.DirtyCount() > m.Pages()/2 {
			m.ClearDirty()
		}
	}
}

// BenchmarkDirtyBitmapClear measures harvesting a fully dirty 1 GiB guest.
func BenchmarkDirtyBitmapClear(b *testing.B) {
	m := NewGuestMemory(1 << 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarkAllDirty()
		if m.ClearDirty() != m.Pages() {
			b.Fatal("wrong count")
		}
	}
}

// BenchmarkWorkloadApply measures one second of hotspot-writer guest time.
func BenchmarkWorkloadApply(b *testing.B) {
	m := NewGuestMemory(256 << 20)
	w := HotspotWriter{Rate: 40 << 20}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ApplyDirty(m, time.Second, rng)
		m.ClearDirty()
	}
}

// BenchmarkCreateDestroyVM measures hypervisor bookkeeping.
func BenchmarkCreateDestroyVM(b *testing.B) {
	h := NewHost("bench", 64, 1e9, 1<<40, 1<<40, 0)
	cfg := VMConfig{Name: "vm", VCPUs: 1, MemoryBytes: 1 << 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.CreateVM(cfg); err != nil {
			b.Fatal(err)
		}
		if err := h.DestroyVM("vm"); err != nil {
			b.Fatal(err)
		}
	}
}
