package virt

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// PageSize is the guest page size in bytes, matching x86 4 KiB pages. Live
// migration moves memory at page granularity, so the dirty-page bitmap below
// is the ground truth the pre-copy algorithm iterates over.
const PageSize = 4096

// GuestMemory tracks which pages of a VM's RAM have been written since the
// last clear. It is a real bitmap, not a rate model: workloads mark pages and
// the migration engine harvests them, so the writable-working-set effects
// that govern pre-copy convergence (re-dirtying the same hot pages costs one
// page, not many) emerge from the data structure instead of being assumed.
type GuestMemory struct {
	pages      int
	dirty      []uint64
	dirtyCount int
}

// NewGuestMemory returns memory of the given size. Sizes that are not a
// multiple of PageSize are rounded up to whole pages.
func NewGuestMemory(bytes int64) *GuestMemory {
	if bytes <= 0 {
		panic(fmt.Sprintf("virt: non-positive memory size %d", bytes))
	}
	pages := int((bytes + PageSize - 1) / PageSize)
	return &GuestMemory{
		pages: pages,
		dirty: make([]uint64, (pages+63)/64),
	}
}

// Pages returns the total number of guest pages.
func (m *GuestMemory) Pages() int { return m.pages }

// Bytes returns the total memory size in bytes.
func (m *GuestMemory) Bytes() int64 { return int64(m.pages) * PageSize }

// DirtyCount returns the number of pages dirtied since the last clear.
func (m *GuestMemory) DirtyCount() int { return m.dirtyCount }

// DirtyBytes returns DirtyCount in bytes.
func (m *GuestMemory) DirtyBytes() int64 { return int64(m.dirtyCount) * PageSize }

// IsDirty reports whether page p is dirty. Out-of-range pages panic.
func (m *GuestMemory) IsDirty(p int) bool {
	m.check(p)
	return m.dirty[p/64]&(1<<(p%64)) != 0
}

// MarkDirty marks page p dirty. Marking an already-dirty page is a no-op,
// which is exactly the writable-working-set property.
func (m *GuestMemory) MarkDirty(p int) {
	m.check(p)
	w, b := p/64, uint64(1)<<(p%64)
	if m.dirty[w]&b == 0 {
		m.dirty[w] |= b
		m.dirtyCount++
	}
}

func (m *GuestMemory) check(p int) {
	if p < 0 || p >= m.pages {
		panic(fmt.Sprintf("virt: page %d out of range [0,%d)", p, m.pages))
	}
}

// MarkAllDirty marks every page, the state at the start of a migration's
// first pre-copy round.
func (m *GuestMemory) MarkAllDirty() {
	for i := range m.dirty {
		m.dirty[i] = ^uint64(0)
	}
	// Clear bits past the last page in the final word.
	if rem := m.pages % 64; rem != 0 {
		m.dirty[len(m.dirty)-1] = (1 << rem) - 1
	}
	m.dirtyCount = m.pages
}

// ClearDirty resets the bitmap and returns how many pages were dirty.
func (m *GuestMemory) ClearDirty() int {
	n := m.dirtyCount
	for i := range m.dirty {
		m.dirty[i] = 0
	}
	m.dirtyCount = 0
	return n
}

// recount recomputes dirtyCount from the bitmap; used by property tests to
// validate the incremental counter.
func (m *GuestMemory) recount() int {
	n := 0
	for _, w := range m.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// DirtyRandom performs writes uniformly at random page addresses. writes is
// the number of page-granularity stores, not the number of newly dirtied
// pages: hitting an already-dirty page adds nothing, so the resulting dirty
// growth saturates exactly like a real uniform writer.
func (m *GuestMemory) DirtyRandom(writes int, rng *rand.Rand) {
	for i := 0; i < writes; i++ {
		m.MarkDirty(rng.Intn(m.pages))
	}
}

// DirtyHotspot performs writes where hotFrac of the address space receives
// hotBias of the writes (e.g. 10% of pages take 90% of writes). This is the
// working-set shape that makes pre-copy converge.
func (m *GuestMemory) DirtyHotspot(writes int, hotFrac, hotBias float64, rng *rand.Rand) {
	if hotFrac <= 0 || hotFrac > 1 || hotBias < 0 || hotBias > 1 {
		panic(fmt.Sprintf("virt: bad hotspot parameters frac=%v bias=%v", hotFrac, hotBias))
	}
	hotPages := int(float64(m.pages) * hotFrac)
	if hotPages < 1 {
		hotPages = 1
	}
	for i := 0; i < writes; i++ {
		if rng.Float64() < hotBias {
			m.MarkDirty(rng.Intn(hotPages))
		} else {
			m.MarkDirty(rng.Intn(m.pages))
		}
	}
}

// DirtySequential performs writes at consecutive pages starting at *cursor,
// wrapping at the end of memory, and advances the cursor — the access
// pattern of a streaming video buffer.
func (m *GuestMemory) DirtySequential(writes int, cursor *int) {
	if *cursor < 0 || *cursor >= m.pages {
		*cursor = 0
	}
	for i := 0; i < writes; i++ {
		m.MarkDirty(*cursor)
		*cursor = (*cursor + 1) % m.pages
	}
}
