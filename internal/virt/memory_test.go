package virt

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestGuestMemorySizing(t *testing.T) {
	m := NewGuestMemory(1 << 20) // 1 MiB
	if m.Pages() != 256 {
		t.Fatalf("Pages = %d, want 256", m.Pages())
	}
	if m.Bytes() != 1<<20 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
	// Non-multiple rounds up.
	m = NewGuestMemory(PageSize + 1)
	if m.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2 (round up)", m.Pages())
	}
}

func TestNewGuestMemoryPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGuestMemory(0)
}

func TestMarkDirtyIdempotent(t *testing.T) {
	m := NewGuestMemory(64 * PageSize)
	m.MarkDirty(5)
	m.MarkDirty(5)
	m.MarkDirty(5)
	if m.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d, want 1 (WWS property)", m.DirtyCount())
	}
	if !m.IsDirty(5) || m.IsDirty(6) {
		t.Fatal("IsDirty wrong")
	}
}

func TestMarkAllAndClear(t *testing.T) {
	for _, pages := range []int{1, 63, 64, 65, 1000} {
		m := NewGuestMemory(int64(pages) * PageSize)
		m.MarkAllDirty()
		if m.DirtyCount() != pages {
			t.Fatalf("pages=%d: DirtyCount=%d after MarkAllDirty", pages, m.DirtyCount())
		}
		if m.recount() != pages {
			t.Fatalf("pages=%d: bitmap recount=%d", pages, m.recount())
		}
		if n := m.ClearDirty(); n != pages {
			t.Fatalf("ClearDirty returned %d, want %d", n, pages)
		}
		if m.DirtyCount() != 0 || m.recount() != 0 {
			t.Fatal("clear left dirty pages")
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewGuestMemory(4 * PageSize)
	for _, p := range []int{-1, 4, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("page %d did not panic", p)
				}
			}()
			m.MarkDirty(p)
		}()
	}
}

func TestDirtyRandomSaturates(t *testing.T) {
	m := NewGuestMemory(128 * PageSize)
	rng := rand.New(rand.NewSource(1))
	m.DirtyRandom(100000, rng)
	if m.DirtyCount() != 128 {
		t.Fatalf("heavy random writes dirtied %d/128 pages", m.DirtyCount())
	}
}

func TestDirtyHotspotConcentrates(t *testing.T) {
	m := NewGuestMemory(10000 * PageSize)
	rng := rand.New(rand.NewSource(2))
	m.DirtyHotspot(5000, 0.1, 0.9, rng)
	// 90% of 5000 writes land in 1000 hot pages: those saturate, so the
	// dirty count should be far below 5000.
	if m.DirtyCount() >= 4000 {
		t.Fatalf("hotspot writes dirtied %d pages, expected strong saturation", m.DirtyCount())
	}
	if m.DirtyCount() < 1000 {
		t.Fatalf("hotspot writes dirtied only %d pages", m.DirtyCount())
	}
}

func TestDirtyHotspotValidation(t *testing.T) {
	m := NewGuestMemory(10 * PageSize)
	rng := rand.New(rand.NewSource(3))
	for _, bad := range [][2]float64{{0, 0.5}, {1.5, 0.5}, {0.5, -0.1}, {0.5, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %v did not panic", bad)
				}
			}()
			m.DirtyHotspot(1, bad[0], bad[1], rng)
		}()
	}
}

func TestDirtySequentialWraps(t *testing.T) {
	m := NewGuestMemory(10 * PageSize)
	cursor := 8
	m.DirtySequential(4, &cursor) // pages 8,9,0,1
	if cursor != 2 {
		t.Fatalf("cursor = %d, want 2", cursor)
	}
	for _, p := range []int{8, 9, 0, 1} {
		if !m.IsDirty(p) {
			t.Fatalf("page %d not dirty", p)
		}
	}
	if m.DirtyCount() != 4 {
		t.Fatalf("DirtyCount = %d", m.DirtyCount())
	}
	// Bad cursor resets to 0.
	cursor = 99
	m.DirtySequential(1, &cursor)
	if !m.IsDirty(0) || cursor != 1 {
		t.Fatalf("bad cursor not reset: cursor=%d", cursor)
	}
}

// Property: DirtyCount always equals the bitmap population count, for any
// mix of operations.
func TestPropertyDirtyCountMatchesBitmap(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		m := NewGuestMemory(777 * PageSize)
		rng := rand.New(rand.NewSource(seed))
		cursor := 0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				m.MarkDirty(int(op) % m.Pages())
			case 1:
				m.DirtyRandom(int(op%100), rng)
			case 2:
				m.DirtyHotspot(int(op%100), 0.1, 0.9, rng)
			case 3:
				m.DirtySequential(int(op%200), &cursor)
			case 4:
				m.ClearDirty()
			}
			if m.DirtyCount() != m.recount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: dirty growth from N random writes is <= N and <= total pages.
func TestPropertyDirtyGrowthBounded(t *testing.T) {
	f := func(seed int64, writes uint16) bool {
		m := NewGuestMemory(512 * PageSize)
		rng := rand.New(rand.NewSource(seed))
		m.DirtyRandom(int(writes), rng)
		return m.DirtyCount() <= int(writes) && m.DirtyCount() <= m.Pages()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadsApplyDirty(t *testing.T) {
	cases := []struct {
		w       Workload
		minRate int64
	}{
		{IdleWorkload{}, 1},
		{UniformWriter{Rate: 10 * 1 << 20}, 1 << 20},
		{HotspotWriter{Rate: 10 * 1 << 20}, 1 << 20},
		{&StreamingServer{StreamRate: 5 * 1 << 20}, 1 << 20},
	}
	for _, tc := range cases {
		m := NewGuestMemory(64 << 20) // 64 MiB
		rng := rand.New(rand.NewSource(7))
		tc.w.ApplyDirty(m, time.Second, rng)
		if tc.w.Name() == "" {
			t.Fatal("empty workload name")
		}
		if u := tc.w.CPUUtil(); u < 0 || u > 1 {
			t.Fatalf("%s: CPUUtil %v out of range", tc.w.Name(), u)
		}
		if tc.w.DirtyBytesPerSec() < tc.minRate {
			t.Fatalf("%s: DirtyBytesPerSec %d below %d", tc.w.Name(), tc.w.DirtyBytesPerSec(), tc.minRate)
		}
		if m.DirtyCount() == 0 {
			t.Fatalf("%s: 1s of workload dirtied nothing", tc.w.Name())
		}
	}
}

func TestStreamingServerIsSequential(t *testing.T) {
	w := &StreamingServer{StreamRate: 4 * 1 << 20} // 4 MB/s = 1024 pages/s
	m := NewGuestMemory(1 << 30)                   // 1 GiB: no wrap in 1s
	rng := rand.New(rand.NewSource(1))
	w.ApplyDirty(m, time.Second, rng)
	// The first 1024 pages must be dirty (sequential fill from cursor 0).
	for p := 0; p < 1024; p++ {
		if !m.IsDirty(p) {
			t.Fatalf("sequential page %d not dirty", p)
		}
	}
}
