package virt

import (
	"errors"
	"testing"
)

func TestReservationLifecycle(t *testing.T) {
	h := testHost("n1")
	cfg := testCfg("vm1")
	if err := h.Reserve(cfg); err != nil {
		t.Fatal(err)
	}
	// Reservation counts against capacity.
	vcpus, mem, disk := h.Usage()
	if vcpus != 2 || mem != 2*gb || disk != 10*gb {
		t.Fatalf("usage = %d/%d/%d", vcpus, mem, disk)
	}
	// Duplicate reservation and same-name VM rejected.
	if err := h.Reserve(cfg); !errors.Is(err, ErrDuplicateVM) {
		t.Fatalf("double reserve: %v", err)
	}
	if _, err := h.CreateVM(cfg); err == nil {
		t.Fatal("CreateVM over a reservation accepted")
	}
	// Cancel releases.
	if err := h.CancelReservation("vm1"); err != nil {
		t.Fatal(err)
	}
	if vcpus, mem, _ := h.Usage(); vcpus != 0 || mem != 0 {
		t.Fatalf("usage after cancel = %d/%d", vcpus, mem)
	}
	if err := h.CancelReservation("vm1"); err == nil {
		t.Fatal("double cancel accepted")
	}
}

func TestCommitReservationAttachesVM(t *testing.T) {
	src, dst := testHost("src"), testHost("dst")
	vm, _ := src.CreateVM(testCfg("vm1"))
	if err := dst.CommitReservation(vm); err == nil {
		t.Fatal("commit without reservation accepted")
	}
	if err := dst.Reserve(vm.Config); err != nil {
		t.Fatal(err)
	}
	if err := dst.CommitReservation(vm); err != nil {
		t.Fatal(err)
	}
	if vm.Host() != dst {
		t.Fatal("commit did not move the VM")
	}
	// The reservation is consumed; usage unchanged by commit.
	vcpus, mem, _ := dst.Usage()
	if vcpus != 2 || mem != 2*gb {
		t.Fatalf("usage = %d/%d", vcpus, mem)
	}
	if dst.VM("vm1") != vm {
		t.Fatal("VM not resident after commit")
	}
	// Second commit fails (no reservation anymore).
	if err := dst.CommitReservation(vm); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestReserveValidation(t *testing.T) {
	h := testHost("n1")
	if err := h.Reserve(VMConfig{Name: "", VCPUs: 1, MemoryBytes: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
	big := testCfg("big")
	big.MemoryBytes = 100 * gb
	if err := h.Reserve(big); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("oversized reserve: %v", err)
	}
}

func TestFinishMigrationStates(t *testing.T) {
	h := testHost("n1")
	vm, _ := h.CreateVM(testCfg("vm1"))
	if err := vm.FinishMigration(true); !errors.Is(err, ErrBadState) {
		t.Fatalf("finish without migration: %v", err)
	}
	vm.Start()
	vm.BeginMigration()
	if err := vm.FinishMigration(false); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateFailed {
		t.Fatalf("state = %v after failed migration", vm.State())
	}
}
