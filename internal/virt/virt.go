// Package virt is the KVM stand-in: it simulates physical hosts, the
// hypervisor running on each of them, and the virtual machines it hosts.
// Guest memory is tracked with a real dirty-page bitmap (memory.go), guests
// run parameterised workloads (workload.go), and the cost of virtualization
// itself — the paper's §II-B full- vs. para-virtualization discussion — is a
// calibrated per-mode penalty on CPU and I/O operations, which experiment E5
// measures.
package virt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// VirtMode selects the virtualization strategy for a VM, following the
// paper's taxonomy: native (no virtualization), full virtualization with
// binary translation, para-virtualization (Xen-style hypercalls), and
// hardware-assisted full virtualization (KVM on Intel VT / AMD-V, what the
// paper deploys).
type VirtMode int

// Virtualization modes.
const (
	Native VirtMode = iota
	FullVirt
	ParaVirt
	HWAssist
)

// String implements fmt.Stringer.
func (m VirtMode) String() string {
	switch m {
	case Native:
		return "native"
	case FullVirt:
		return "full"
	case ParaVirt:
		return "para"
	case HWAssist:
		return "kvm-hw"
	default:
		return fmt.Sprintf("VirtMode(%d)", int(m))
	}
}

// CPUPenalty returns the multiplicative slowdown for CPU-bound guest work.
// Calibrated against 2008-2012 era measurements (Barham et al. SOSP'03;
// Zhang et al. NPC'10): para-virtualization a few percent, software full
// virtualization tens of percent, hardware-assisted in between.
func (m VirtMode) CPUPenalty() float64 {
	switch m {
	case Native:
		return 1.0
	case FullVirt:
		return 1.22
	case ParaVirt:
		return 1.03
	case HWAssist:
		return 1.07
	default:
		panic(fmt.Sprintf("virt: unknown mode %d", int(m)))
	}
}

// IOPenalty returns the multiplicative slowdown for I/O-bound guest work,
// where device emulation dominates: full virtualization pays the most,
// para-virtual (and virtio-style) drivers much less.
func (m VirtMode) IOPenalty() float64 {
	switch m {
	case Native:
		return 1.0
	case FullVirt:
		return 1.45
	case ParaVirt:
		return 1.10
	case HWAssist:
		return 1.18
	default:
		panic(fmt.Sprintf("virt: unknown mode %d", int(m)))
	}
}

// VMState is the life-cycle state of a VM, mirroring the OpenNebula state
// machine the orchestrator drives.
type VMState int

// VM life-cycle states.
const (
	StateCreated VMState = iota
	StateRunning
	StatePaused
	StateMigrating
	StateShutdown
	StateFailed
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateMigrating:
		return "migrating"
	case StateShutdown:
		return "shutdown"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// Errors returned by host and VM operations.
var (
	ErrInsufficientCapacity = errors.New("virt: insufficient host capacity")
	ErrBadState             = errors.New("virt: operation invalid in current state")
	ErrDuplicateVM          = errors.New("virt: VM name already in use on host")
	ErrNoSuchVM             = errors.New("virt: no such VM on host")
)

// VMConfig describes a VM to create. MemoryBytes and DiskBytes must be
// positive; VCPUs must be >= 1.
type VMConfig struct {
	Name        string
	VCPUs       int
	MemoryBytes int64
	DiskBytes   int64
	Mode        VirtMode
	Image       string // image catalog reference; informational at this layer
}

func (c VMConfig) validate() error {
	if c.Name == "" {
		return fmt.Errorf("virt: VM config with empty name")
	}
	if c.VCPUs < 1 {
		return fmt.Errorf("virt: VM %q with %d vcpus", c.Name, c.VCPUs)
	}
	if c.MemoryBytes <= 0 {
		return fmt.Errorf("virt: VM %q with non-positive memory", c.Name)
	}
	if c.DiskBytes < 0 {
		return fmt.Errorf("virt: VM %q with negative disk", c.Name)
	}
	return nil
}

// VM is a virtual machine instance on some host.
type VM struct {
	Config   VMConfig
	Mem      *GuestMemory
	Workload Workload

	mu      sync.Mutex
	state   VMState
	host    *Host
	rng     *rand.Rand
	context map[string]string // orchestrator-delivered context (IPs, creds)

	// runSince tracks virtual run time already applied to the dirty
	// bitmap; the migration engine advances it.
	dirtyApplied time.Duration
}

// State returns the VM's life-cycle state.
func (v *VM) State() VMState {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.state
}

// Host returns the host currently holding the VM (nil after destroy).
func (v *VM) Host() *Host {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.host
}

// Rand returns the VM's deterministic RNG (seeded from the VM name).
func (v *VM) Rand() *rand.Rand { return v.rng }

// SetContext stores orchestrator-delivered contextualization data, the
// OpenNebula "context information delivery" of §III-A (IP addresses,
// certificates, licences).
func (v *VM) SetContext(ctx map[string]string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.context = make(map[string]string, len(ctx))
	for k, val := range ctx {
		v.context[k] = val
	}
}

// Context returns a copy of the VM's contextualization data.
func (v *VM) Context() map[string]string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]string, len(v.context))
	for k, val := range v.context {
		out[k] = val
	}
	return out
}

// Start transitions Created/Shutdown -> Running.
func (v *VM) Start() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != StateCreated && v.state != StateShutdown {
		return fmt.Errorf("%w: start from %v", ErrBadState, v.state)
	}
	v.state = StateRunning
	return nil
}

// Pause transitions Running -> Paused (used by stop-and-copy).
func (v *VM) Pause() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != StateRunning {
		return fmt.Errorf("%w: pause from %v", ErrBadState, v.state)
	}
	v.state = StatePaused
	return nil
}

// Resume transitions Paused -> Running.
func (v *VM) Resume() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != StatePaused {
		return fmt.Errorf("%w: resume from %v", ErrBadState, v.state)
	}
	v.state = StateRunning
	return nil
}

// Shutdown transitions Running/Paused -> Shutdown.
func (v *VM) Shutdown() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != StateRunning && v.state != StatePaused {
		return fmt.Errorf("%w: shutdown from %v", ErrBadState, v.state)
	}
	v.state = StateShutdown
	return nil
}

// Fail marks the VM failed (host crash injection).
func (v *VM) Fail() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.state = StateFailed
}

// setState is used by the migration engine, which owns the
// Running<->Migrating transitions.
func (v *VM) setState(s VMState) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.state = s
}

// BeginMigration marks the VM migrating; only running VMs can live-migrate.
func (v *VM) BeginMigration() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != StateRunning {
		return fmt.Errorf("%w: migrate from %v", ErrBadState, v.state)
	}
	v.state = StateMigrating
	return nil
}

// FinishMigration ends the Migrating state: success resumes the VM Running
// (on whichever host now holds it), failure marks it Failed.
func (v *VM) FinishMigration(success bool) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != StateMigrating {
		return fmt.Errorf("%w: finish-migration from %v", ErrBadState, v.state)
	}
	if success {
		v.state = StateRunning
	} else {
		v.state = StateFailed
	}
	return nil
}

// RunFor applies the VM's workload to guest memory for dt of virtual run
// time. It is the bridge between the DES clock and the dirty bitmap.
func (v *VM) RunFor(dt time.Duration) {
	if v.Workload == nil || dt <= 0 {
		return
	}
	v.Workload.ApplyDirty(v.Mem, dt, v.rng)
	v.dirtyApplied += dt
}

// CPUTime returns how long work units of CPU-bound computation take on this
// VM, accounting for vCPU count, host core speed, and virtualization
// penalty.
func (v *VM) CPUTime(work float64) time.Duration {
	h := v.Host()
	if h == nil {
		panic("virt: CPUTime on destroyed VM")
	}
	rate := float64(v.Config.VCPUs) * h.CoreRate
	secs := work / rate * v.Config.Mode.CPUPenalty()
	return time.Duration(secs * float64(time.Second))
}

// IOTime returns how long moving bytes through a virtual device with the
// host's device rate takes, including the mode's I/O penalty.
func (v *VM) IOTime(bytes int64) time.Duration {
	h := v.Host()
	if h == nil {
		panic("virt: IOTime on destroyed VM")
	}
	secs := float64(bytes) / h.DiskRate * v.Config.Mode.IOPenalty()
	return time.Duration(secs * float64(time.Second))
}

// Host is a physical machine running the hypervisor. CoreRate is per-core
// compute throughput in work-units/second (the unit CPUTime consumes);
// DiskRate is local disk bandwidth in bytes/second.
type Host struct {
	Name        string
	Cores       int
	CoreRate    float64
	MemoryBytes int64
	DiskBytes   int64
	DiskRate    float64

	mu           sync.Mutex
	vms          map[string]*VM
	reservations map[string]VMConfig
	usedVCPU     int
	usedMem      int64
	usedDisk     int64
	cpuOC        float64 // vCPU overcommit factor, >= 1
	failed       bool
	disabled     bool
}

// NewHost returns a host with the given capacity. A zero diskRate defaults
// to 120 MB/s (a 2012-era SATA disk).
func NewHost(name string, cores int, coreRate float64, memoryBytes, diskBytes int64, diskRate float64) *Host {
	if name == "" || cores < 1 || coreRate <= 0 || memoryBytes <= 0 || diskBytes < 0 {
		panic(fmt.Sprintf("virt: bad host parameters for %q", name))
	}
	if diskRate <= 0 {
		diskRate = 120e6
	}
	return &Host{
		Name: name, Cores: cores, CoreRate: coreRate,
		MemoryBytes: memoryBytes, DiskBytes: diskBytes, DiskRate: diskRate,
		vms:          make(map[string]*VM),
		reservations: make(map[string]VMConfig),
		cpuOC:        1.0,
	}
}

// SetCPUOvercommit allows factor× vCPU oversubscription (OpenNebula's
// default deployments overcommit CPU but not memory). factor < 1 panics.
func (h *Host) SetCPUOvercommit(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("virt: overcommit factor %v < 1", factor))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cpuOC = factor
}

// Failed reports whether the host has been crash-injected.
func (h *Host) Failed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.failed
}

// Fail crash-injects the host: all of its VMs fail and further placement is
// rejected.
func (h *Host) Fail() {
	h.mu.Lock()
	vms := make([]*VM, 0, len(h.vms))
	for _, vm := range h.vms {
		vms = append(vms, vm)
	}
	h.failed = true
	h.mu.Unlock()
	for _, vm := range vms {
		vm.Fail()
	}
}

// SetDisabled puts the host in (or out of) maintenance mode: existing VMs
// keep running, but new placements and incoming migration reservations are
// rejected. This is what an orchestrator-driven evacuation sets first.
func (h *Host) SetDisabled(disabled bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.disabled = disabled
}

// Disabled reports whether the host is in maintenance mode.
func (h *Host) Disabled() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.disabled
}

// Usage reports committed resources.
func (h *Host) Usage() (vcpus int, mem, disk int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.usedVCPU, h.usedMem, h.usedDisk
}

// FreeMemory returns uncommitted RAM.
func (h *Host) FreeMemory() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.MemoryBytes - h.usedMem
}

// CanFit reports whether cfg would fit on this host right now.
func (h *Host) CanFit(cfg VMConfig) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fitsLocked(cfg)
}

func (h *Host) fitsLocked(cfg VMConfig) bool {
	if h.failed || h.disabled {
		return false
	}
	if float64(h.usedVCPU+cfg.VCPUs) > float64(h.Cores)*h.cpuOC {
		return false
	}
	if h.usedMem+cfg.MemoryBytes > h.MemoryBytes {
		return false
	}
	if h.usedDisk+cfg.DiskBytes > h.DiskBytes {
		return false
	}
	return true
}

// CreateVM reserves capacity and instantiates a VM in StateCreated.
func (h *Host) CreateVM(cfg VMConfig) (*VM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.vms[cfg.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVM, cfg.Name)
	}
	if _, dup := h.reservations[cfg.Name]; dup {
		return nil, fmt.Errorf("%w: %q (reserved for incoming migration)", ErrDuplicateVM, cfg.Name)
	}
	if !h.fitsLocked(cfg) {
		return nil, fmt.Errorf("%w: %q on %q (vcpu %d/%d mem %d/%d)",
			ErrInsufficientCapacity, cfg.Name, h.Name,
			h.usedVCPU+cfg.VCPUs, h.Cores, h.usedMem+cfg.MemoryBytes, h.MemoryBytes)
	}
	seed := int64(0)
	for _, c := range cfg.Name {
		seed = seed*131 + int64(c)
	}
	vm := &VM{
		Config: cfg,
		Mem:    NewGuestMemory(cfg.MemoryBytes),
		state:  StateCreated,
		host:   h,
		rng:    rand.New(rand.NewSource(seed)),
	}
	h.vms[cfg.Name] = vm
	h.usedVCPU += cfg.VCPUs
	h.usedMem += cfg.MemoryBytes
	h.usedDisk += cfg.DiskBytes
	return vm, nil
}

// DestroyVM releases the VM's reservation and detaches it from the host.
func (h *Host) DestroyVM(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	if !ok {
		return fmt.Errorf("%w: %q on %q", ErrNoSuchVM, name, h.Name)
	}
	delete(h.vms, name)
	h.usedVCPU -= vm.Config.VCPUs
	h.usedMem -= vm.Config.MemoryBytes
	h.usedDisk -= vm.Config.DiskBytes
	vm.mu.Lock()
	vm.host = nil
	vm.mu.Unlock()
	return nil
}

// AdoptVM attaches an existing VM (arriving via migration) to this host,
// reserving its resources. The VM keeps its memory image and state.
func (h *Host) AdoptVM(vm *VM) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	cfg := vm.Config
	if _, dup := h.vms[cfg.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateVM, cfg.Name)
	}
	if !h.fitsLocked(cfg) {
		return fmt.Errorf("%w: adopt %q on %q", ErrInsufficientCapacity, cfg.Name, h.Name)
	}
	h.vms[cfg.Name] = vm
	h.usedVCPU += cfg.VCPUs
	h.usedMem += cfg.MemoryBytes
	h.usedDisk += cfg.DiskBytes
	vm.mu.Lock()
	vm.host = h
	vm.mu.Unlock()
	return nil
}

// ReleaseVM removes a VM from this host's books without changing the VM
// (the source side of a completed migration).
func (h *Host) ReleaseVM(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	vm, ok := h.vms[name]
	if !ok {
		return fmt.Errorf("%w: %q on %q", ErrNoSuchVM, name, h.Name)
	}
	delete(h.vms, name)
	h.usedVCPU -= vm.Config.VCPUs
	h.usedMem -= vm.Config.MemoryBytes
	h.usedDisk -= vm.Config.DiskBytes
	return nil
}

// Reserve books capacity for an incoming migration under cfg.Name without
// attaching a VM. The reservation counts against capacity until
// CommitReservation or CancelReservation.
func (h *Host) Reserve(cfg VMConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.vms[cfg.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateVM, cfg.Name)
	}
	if _, dup := h.reservations[cfg.Name]; dup {
		return fmt.Errorf("%w: reservation %q", ErrDuplicateVM, cfg.Name)
	}
	if !h.fitsLocked(cfg) {
		return fmt.Errorf("%w: reserve %q on %q", ErrInsufficientCapacity, cfg.Name, h.Name)
	}
	h.reservations[cfg.Name] = cfg
	h.usedVCPU += cfg.VCPUs
	h.usedMem += cfg.MemoryBytes
	h.usedDisk += cfg.DiskBytes
	return nil
}

// CommitReservation converts a reservation into residency for vm, which must
// carry the reserved name. The VM's host pointer moves here.
func (h *Host) CommitReservation(vm *VM) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.reservations[vm.Config.Name]; !ok {
		return fmt.Errorf("virt: no reservation for %q on %q", vm.Config.Name, h.Name)
	}
	delete(h.reservations, vm.Config.Name)
	h.vms[vm.Config.Name] = vm
	vm.mu.Lock()
	vm.host = h
	vm.mu.Unlock()
	return nil
}

// CancelReservation releases a reservation (aborted migration).
func (h *Host) CancelReservation(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	cfg, ok := h.reservations[name]
	if !ok {
		return fmt.Errorf("virt: no reservation for %q on %q", name, h.Name)
	}
	delete(h.reservations, name)
	h.usedVCPU -= cfg.VCPUs
	h.usedMem -= cfg.MemoryBytes
	h.usedDisk -= cfg.DiskBytes
	return nil
}

// VM returns the named VM or nil.
func (h *Host) VM(name string) *VM {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.vms[name]
}

// VMs returns this host's VMs sorted by name.
func (h *Host) VMs() []*VM {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*VM, 0, len(h.vms))
	for _, vm := range h.vms {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Config.Name < out[j].Config.Name })
	return out
}

// CPUUtilization returns the host's aggregate guest CPU demand as a fraction
// of its cores (can exceed 1 under overcommit) — what the OpenNebula monitor
// displays per host.
func (h *Host) CPUUtilization() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	demand := 0.0
	for _, vm := range h.vms {
		if vm.Workload == nil {
			continue
		}
		// A migrating VM keeps running (and consuming CPU) on the
		// source until switchover — that is what "live" means.
		if s := vm.State(); s == StateRunning || s == StateMigrating {
			demand += vm.Workload.CPUUtil() * float64(vm.Config.VCPUs)
		}
	}
	return demand / float64(h.Cores)
}
