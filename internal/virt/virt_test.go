package virt

import (
	"errors"
	"testing"
	"testing/quick"
)

const (
	gb = int64(1) << 30
	mb = int64(1) << 20
)

func testHost(name string) *Host {
	return NewHost(name, 8, 1e9, 16*gb, 500*gb, 0)
}

func testCfg(name string) VMConfig {
	return VMConfig{Name: name, VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb, Mode: HWAssist}
}

func TestModePenaltiesOrdering(t *testing.T) {
	// Paper §II-B: para outperforms full; everything virtualized is slower
	// than native; KVM-with-VT sits between para and software-full.
	if !(Native.CPUPenalty() < ParaVirt.CPUPenalty() &&
		ParaVirt.CPUPenalty() < HWAssist.CPUPenalty() &&
		HWAssist.CPUPenalty() < FullVirt.CPUPenalty()) {
		t.Fatal("CPU penalty ordering violates the paper's §II-B claims")
	}
	if !(Native.IOPenalty() < ParaVirt.IOPenalty() &&
		ParaVirt.IOPenalty() < HWAssist.IOPenalty() &&
		HWAssist.IOPenalty() < FullVirt.IOPenalty()) {
		t.Fatal("IO penalty ordering violates the paper's §II-B claims")
	}
	for _, m := range []VirtMode{Native, FullVirt, ParaVirt, HWAssist} {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
}

func TestCreateVMReservesCapacity(t *testing.T) {
	h := testHost("n1")
	vm, err := h.CreateVM(testCfg("vm1"))
	if err != nil {
		t.Fatal(err)
	}
	vcpu, mem, disk := h.Usage()
	if vcpu != 2 || mem != 2*gb || disk != 10*gb {
		t.Fatalf("usage = %d/%d/%d", vcpu, mem, disk)
	}
	if vm.State() != StateCreated {
		t.Fatalf("state = %v", vm.State())
	}
	if vm.Host() != h {
		t.Fatal("VM not attached to host")
	}
	if vm.Mem.Bytes() != 2*gb {
		t.Fatalf("guest memory = %d", vm.Mem.Bytes())
	}
}

func TestCreateVMRejectsOverCapacity(t *testing.T) {
	h := testHost("n1")
	cfg := testCfg("big")
	cfg.MemoryBytes = 32 * gb
	if _, err := h.CreateVM(cfg); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("err = %v", err)
	}
	cfg = testCfg("cpu")
	cfg.VCPUs = 100
	if _, err := h.CreateVM(cfg); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("err = %v", err)
	}
	cfg = testCfg("disk")
	cfg.DiskBytes = 1000 * gb
	if _, err := h.CreateVM(cfg); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateVMValidation(t *testing.T) {
	h := testHost("n1")
	for _, cfg := range []VMConfig{
		{Name: "", VCPUs: 1, MemoryBytes: mb},
		{Name: "x", VCPUs: 0, MemoryBytes: mb},
		{Name: "x", VCPUs: 1, MemoryBytes: 0},
		{Name: "x", VCPUs: 1, MemoryBytes: mb, DiskBytes: -1},
	} {
		if _, err := h.CreateVM(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestDuplicateVMName(t *testing.T) {
	h := testHost("n1")
	if _, err := h.CreateVM(testCfg("vm1")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM(testCfg("vm1")); !errors.Is(err, ErrDuplicateVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestDestroyReleasesCapacity(t *testing.T) {
	h := testHost("n1")
	vm, _ := h.CreateVM(testCfg("vm1"))
	if err := h.DestroyVM("vm1"); err != nil {
		t.Fatal(err)
	}
	vcpu, mem, disk := h.Usage()
	if vcpu != 0 || mem != 0 || disk != 0 {
		t.Fatalf("usage after destroy = %d/%d/%d", vcpu, mem, disk)
	}
	if vm.Host() != nil {
		t.Fatal("destroyed VM still attached")
	}
	if err := h.DestroyVM("vm1"); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("second destroy err = %v", err)
	}
}

func TestCPUOvercommit(t *testing.T) {
	h := testHost("n1") // 8 cores
	h.SetCPUOvercommit(2.0)
	for i := 0; i < 8; i++ { // 16 vcpus on 8 cores
		cfg := testCfg(string(rune('a' + i)))
		cfg.MemoryBytes = mb
		cfg.DiskBytes = 0
		if _, err := h.CreateVM(cfg); err != nil {
			t.Fatalf("vm %d rejected under 2x overcommit: %v", i, err)
		}
	}
	cfg := testCfg("one-too-many")
	cfg.MemoryBytes = mb
	cfg.DiskBytes = 0
	if _, err := h.CreateVM(cfg); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("17th vcpu pair accepted: %v", err)
	}
}

func TestLifecycleTransitions(t *testing.T) {
	h := testHost("n1")
	vm, _ := h.CreateVM(testCfg("vm1"))
	if err := vm.Pause(); !errors.Is(err, ErrBadState) {
		t.Fatalf("pause from created: %v", err)
	}
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(); !errors.Is(err, ErrBadState) {
		t.Fatal("double start accepted")
	}
	if err := vm.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := vm.BeginMigration(); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateMigrating {
		t.Fatalf("state = %v", vm.State())
	}
	vm.setState(StateRunning)
	if err := vm.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Start(); err != nil {
		t.Fatal("restart from shutdown rejected")
	}
}

func TestMigrationAdoptRelease(t *testing.T) {
	src, dst := testHost("src"), testHost("dst")
	vm, _ := src.CreateVM(testCfg("vm1"))
	if err := dst.AdoptVM(vm); err != nil {
		t.Fatal(err)
	}
	if err := src.ReleaseVM("vm1"); err != nil {
		t.Fatal(err)
	}
	if vm.Host() != dst {
		t.Fatal("VM not moved to dst")
	}
	vcpu, _, _ := src.Usage()
	if vcpu != 0 {
		t.Fatal("src still holds reservation")
	}
	dv, dm, dd := dst.Usage()
	if dv != 2 || dm != 2*gb || dd != 10*gb {
		t.Fatalf("dst usage = %d/%d/%d", dv, dm, dd)
	}
}

func TestAdoptRejectsWhenFull(t *testing.T) {
	src := testHost("src")
	dst := NewHost("dst", 1, 1e9, 1*gb, 1*gb, 0)
	vm, _ := src.CreateVM(testCfg("vm1"))
	if err := dst.AdoptVM(vm); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("adopt into tiny host: %v", err)
	}
	if vm.Host() != src {
		t.Fatal("failed adopt moved the VM")
	}
}

func TestHostFailCrashesVMs(t *testing.T) {
	h := testHost("n1")
	vm, _ := h.CreateVM(testCfg("vm1"))
	vm.Start()
	h.Fail()
	if !h.Failed() {
		t.Fatal("host not failed")
	}
	if vm.State() != StateFailed {
		t.Fatalf("VM state = %v, want failed", vm.State())
	}
	if h.CanFit(testCfg("vm2")) {
		t.Fatal("failed host accepts placement")
	}
}

func TestContextDelivery(t *testing.T) {
	h := testHost("n1")
	vm, _ := h.CreateVM(testCfg("vm1"))
	vm.SetContext(map[string]string{"IP": "10.0.0.5", "ROLE": "webserver"})
	ctx := vm.Context()
	if ctx["IP"] != "10.0.0.5" || ctx["ROLE"] != "webserver" {
		t.Fatalf("context = %v", ctx)
	}
	// Returned map is a copy.
	ctx["IP"] = "tampered"
	if vm.Context()["IP"] != "10.0.0.5" {
		t.Fatal("Context returned aliased map")
	}
}

func TestCPUTimeReflectsModeAndVCPUs(t *testing.T) {
	h := testHost("n1")
	mk := func(name string, vcpus int, mode VirtMode) *VM {
		cfg := testCfg(name)
		cfg.VCPUs = vcpus
		cfg.Mode = mode
		vm, err := h.CreateVM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	para := mk("para", 1, ParaVirt)
	full := mk("full", 1, FullVirt)
	if para.CPUTime(1e9) >= full.CPUTime(1e9) {
		t.Fatal("para not faster than full")
	}
	wide := mk("wide", 4, ParaVirt)
	if wide.CPUTime(1e9)*3 >= para.CPUTime(1e9) {
		t.Fatal("4 vcpus not ~4x faster")
	}
	if para.IOTime(mb) >= full.IOTime(mb) {
		t.Fatal("para IO not faster than full")
	}
}

func TestCPUUtilization(t *testing.T) {
	h := testHost("n1") // 8 cores
	cfg := testCfg("busy")
	cfg.VCPUs = 4
	vm, _ := h.CreateVM(cfg)
	vm.Workload = UniformWriter{Rate: mb, Util: 1.0}
	if got := h.CPUUtilization(); got != 0 {
		t.Fatalf("utilization before start = %v", got)
	}
	vm.Start()
	if got := h.CPUUtilization(); got != 0.5 { // 4 busy vcpus / 8 cores
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

// Property: for any sequence of create/destroy, host usage equals the sum of
// resident VM configs, and never exceeds capacity.
func TestPropertyCapacityConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		h := NewHost("h", 16, 1e9, 32*gb, 1000*gb, 0)
		names := []string{}
		for i, op := range ops {
			if op%3 != 0 && len(names) > 0 {
				h.DestroyVM(names[0])
				names = names[1:]
				continue
			}
			name := string(rune('a'+i%26)) + string(rune('0'+i%10))
			cfg := VMConfig{
				Name: name, VCPUs: 1 + int(op%4),
				MemoryBytes: int64(1+op%8) * gb, DiskBytes: int64(op%50) * gb,
			}
			if _, err := h.CreateVM(cfg); err == nil {
				names = append(names, name)
			}
		}
		var wantCPU int
		var wantMem, wantDisk int64
		for _, vm := range h.VMs() {
			wantCPU += vm.Config.VCPUs
			wantMem += vm.Config.MemoryBytes
			wantDisk += vm.Config.DiskBytes
		}
		cpu, mem, disk := h.Usage()
		if cpu != wantCPU || mem != wantMem || disk != wantDisk {
			return false
		}
		return cpu <= h.Cores && mem <= h.MemoryBytes && disk <= h.DiskBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
