package virt

import (
	"math/rand"
	"time"
)

// Workload models what a guest does with its CPU and memory while it runs.
// The migration engine applies a workload's dirtying to the guest bitmap for
// each elapsed interval of virtual time; the scheduler and the E5
// virtualization-overhead experiment read its CPU demand.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// CPUUtil is the fraction of the VM's vCPUs the workload keeps busy,
	// in [0,1].
	CPUUtil() float64
	// DirtyBytesPerSec is the nominal page-write rate. The effective
	// dirty-page growth is lower once the working set saturates.
	DirtyBytesPerSec() int64
	// ApplyDirty marks pages in mem for dt of guest run time.
	ApplyDirty(mem *GuestMemory, dt time.Duration, rng *rand.Rand)
}

// IdleWorkload is a VM that boots and does nothing — the baseline for
// migration (converges immediately) and placement experiments.
type IdleWorkload struct{}

// Name implements Workload.
func (IdleWorkload) Name() string { return "idle" }

// CPUUtil implements Workload.
func (IdleWorkload) CPUUtil() float64 { return 0.02 }

// DirtyBytesPerSec implements Workload.
func (IdleWorkload) DirtyBytesPerSec() int64 { return 64 * 1024 } // kernel housekeeping

// ApplyDirty implements Workload.
func (w IdleWorkload) ApplyDirty(mem *GuestMemory, dt time.Duration, rng *rand.Rand) {
	writes := int(float64(w.DirtyBytesPerSec()) * dt.Seconds() / PageSize)
	mem.DirtyRandom(writes, rng)
}

// UniformWriter dirties pages uniformly at random at Rate bytes/second —
// the adversarial case for pre-copy (no working-set locality), used to find
// the dirty-rate/bandwidth crossover in E1.
type UniformWriter struct {
	Rate int64 // bytes/second of page-granularity stores
	Util float64
}

// Name implements Workload.
func (w UniformWriter) Name() string { return "uniform-writer" }

// CPUUtil implements Workload.
func (w UniformWriter) CPUUtil() float64 {
	if w.Util == 0 {
		return 0.5
	}
	return w.Util
}

// DirtyBytesPerSec implements Workload.
func (w UniformWriter) DirtyBytesPerSec() int64 { return w.Rate }

// ApplyDirty implements Workload.
func (w UniformWriter) ApplyDirty(mem *GuestMemory, dt time.Duration, rng *rand.Rand) {
	writes := int(float64(w.Rate) * dt.Seconds() / PageSize)
	mem.DirtyRandom(writes, rng)
}

// HotspotWriter concentrates HotBias of its writes on HotFraction of memory
// — the realistic server shape (Clark et al. call it the writable working
// set) under which pre-copy converges in a few rounds.
type HotspotWriter struct {
	Rate        int64
	HotFraction float64 // e.g. 0.1: 10% of pages are hot
	HotBias     float64 // e.g. 0.9: hot pages take 90% of writes
	Util        float64
}

// Name implements Workload.
func (w HotspotWriter) Name() string { return "hotspot-writer" }

// CPUUtil implements Workload.
func (w HotspotWriter) CPUUtil() float64 {
	if w.Util == 0 {
		return 0.6
	}
	return w.Util
}

// DirtyBytesPerSec implements Workload.
func (w HotspotWriter) DirtyBytesPerSec() int64 { return w.Rate }

// ApplyDirty implements Workload.
func (w HotspotWriter) ApplyDirty(mem *GuestMemory, dt time.Duration, rng *rand.Rand) {
	writes := int(float64(w.Rate) * dt.Seconds() / PageSize)
	frac, bias := w.HotFraction, w.HotBias
	if frac == 0 {
		frac = 0.1
	}
	if bias == 0 {
		bias = 0.9
	}
	mem.DirtyHotspot(writes, frac, bias, rng)
}

// StreamingServer models the paper's video-serving VM: a cyclic buffer is
// refilled sequentially at the streaming rate while a small hot set (session
// state) is rewritten continuously.
type StreamingServer struct {
	StreamRate int64 // bytes/second written into the playout buffer
	cursor     int
}

// Name implements Workload.
func (w *StreamingServer) Name() string { return "streaming-server" }

// CPUUtil implements Workload.
func (w *StreamingServer) CPUUtil() float64 { return 0.35 }

// DirtyBytesPerSec implements Workload.
func (w *StreamingServer) DirtyBytesPerSec() int64 { return w.StreamRate + w.StreamRate/10 }

// ApplyDirty implements Workload.
func (w *StreamingServer) ApplyDirty(mem *GuestMemory, dt time.Duration, rng *rand.Rand) {
	seq := int(float64(w.StreamRate) * dt.Seconds() / PageSize)
	mem.DirtySequential(seq, &w.cursor)
	// Session state: ~10% extra writes within the first 2% of memory.
	hot := seq / 10
	if hot > 0 {
		mem.DirtyHotspot(hot, 0.02, 1.0, rng)
	}
}
