package web

import (
	"sync"
	"time"

	"videocloud/internal/metrics"
)

// Breaker states. Gauge values are chosen so "bigger is worse".
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 5 * time.Second
)

// breaker is a three-state circuit breaker guarding the HDFS data path of
// the streaming tier. When the store fails repeatedly (DataNodes down,
// NameNode unreachable), the breaker opens and /stream requests fail fast
// with 503 + Retry-After instead of stacking up on a dead backend — the
// metadata pages (home, watch, search) keep serving from the database, so
// the site degrades instead of collapsing. After a cooldown one trial
// request probes the store; success re-closes the breaker.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	opened   *metrics.Counter // closed/half-open -> open transitions
	reclosed *metrics.Counter // half-open -> closed recoveries
	rejected *metrics.Counter // requests short-circuited while open
	state    *metrics.Gauge

	mu       sync.Mutex
	st       int
	failures int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open trial is in flight
}

func newBreaker(reg *metrics.Registry, threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		opened:    reg.Counter("breaker_opened"),
		reclosed:  reg.Counter("breaker_reclosed"),
		rejected:  reg.Counter("breaker_rejected"),
		state:     reg.Gauge("breaker_state"),
	}
}

// Allow reports whether the protected call may proceed. While open it fails
// fast until the cooldown elapses, then admits exactly one probe at a time.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejected.Inc()
			return false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open: one trial at a time
		if b.probing {
			b.rejected.Inc()
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a healthy call, re-closing a half-open breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.st != breakerClosed {
		b.setState(breakerClosed)
		b.reclosed.Inc()
	}
}

// Failure records a failed call: enough consecutive ones trip the breaker,
// and a failed half-open probe re-opens it for another cooldown.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.st {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	case breakerOpen:
		// A straggler that was admitted before the trip; already open.
	}
}

// trip transitions to open. Callers hold b.mu.
func (b *breaker) trip() {
	b.setState(breakerOpen)
	b.openedAt = b.now()
	b.failures = 0
	b.opened.Inc()
}

func (b *breaker) setState(st int) {
	b.st = st
	b.state.Set(int64(st))
}

// RetryAfterSeconds advises clients when the next attempt could succeed:
// the remaining cooldown, at least one second.
func (b *breaker) RetryAfterSeconds() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.st != breakerOpen {
		return 1
	}
	left := b.cooldown - b.now().Sub(b.openedAt)
	secs := int((left + time.Second - 1) / time.Second)
	return max(secs, 1)
}

// BreakerStats summarises the HDFS breaker for core.Status.
type BreakerStats struct {
	// State is "closed", "half-open" or "open".
	State string
	// Opened counts trips, Reclosed recoveries, Rejected requests
	// short-circuited with 503 while open.
	Opened, Reclosed, Rejected int64
}

// BreakerStats returns a snapshot of the streaming tier's HDFS breaker.
func (s *Site) BreakerStats() BreakerStats {
	b := s.hdfsBreaker
	b.mu.Lock()
	st := b.st
	b.mu.Unlock()
	names := map[int]string{breakerClosed: "closed", breakerHalfOpen: "half-open", breakerOpen: "open"}
	return BreakerStats{
		State:    names[st],
		Opened:   b.opened.Value(),
		Reclosed: b.reclosed.Value(),
		Rejected: b.rejected.Value(),
	}
}
