package web

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"videocloud/internal/videodb"
)

// A storage outage on the streaming path must surface as 503 + Retry-After,
// trip the breaker after the threshold, and short-circuit later requests
// without touching HDFS — while the metadata pages keep serving.
func TestBreakerTripsOnStorageOutage(t *testing.T) {
	site, cluster := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("alice", "hunter2")
	watch := b.upload("clip", "d", 4, 7)
	streamPath := "/stream/" + strings.TrimPrefix(watch, "/watch/")

	for _, n := range []string{"dn0", "dn1", "dn2", "dn3"} {
		cluster.DataNode(n).SetDown(true)
	}

	// Every attempt fails with 503 and a Retry-After hint; after
	// BreakerThreshold of them the breaker is open.
	for i := 0; i < defaultBreakerThreshold; i++ {
		resp, _ := b.get(streamPath)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d: status = %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("attempt %d: no Retry-After header", i)
		}
	}
	if st := site.BreakerStats(); st.State != "open" || st.Opened != 1 {
		t.Fatalf("breaker = %+v, want open after %d failures", st, defaultBreakerThreshold)
	}

	// Open breaker: requests are rejected without reaching the store.
	before := site.Metrics().Counter("stream_storage_errors").Value()
	resp, _ := b.get(streamPath)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("short-circuit status = %d", resp.StatusCode)
	}
	if got := site.Metrics().Counter("stream_storage_errors").Value(); got != before {
		t.Fatal("open breaker still hit the store")
	}
	if st := site.BreakerStats(); st.Rejected == 0 {
		t.Fatalf("Rejected = %d, want > 0", st.Rejected)
	}

	// Degradation, not collapse: the watch page still renders from the DB.
	if resp, _ := b.get(watch); resp.StatusCode != http.StatusOK {
		t.Fatalf("watch page status = %d during outage", resp.StatusCode)
	}
}

// After the cooldown a probe request goes through; with the store healthy
// again the breaker re-closes and streaming resumes.
func TestBreakerReclosesAfterRecovery(t *testing.T) {
	site, cluster := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("bob", "hunter2")
	watch := b.upload("clip", "d", 4, 11)
	streamPath := "/stream/" + strings.TrimPrefix(watch, "/watch/")

	// A controllable clock drives the cooldown.
	now := time.Now()
	site.hdfsBreaker.now = func() time.Time { return now }

	for _, n := range []string{"dn0", "dn1", "dn2", "dn3"} {
		cluster.DataNode(n).SetDown(true)
	}
	for i := 0; i < defaultBreakerThreshold; i++ {
		b.get(streamPath)
	}
	if st := site.BreakerStats(); st.State != "open" {
		t.Fatalf("breaker = %+v, want open", st)
	}

	// Still inside the cooldown: rejected.
	if resp, _ := b.get(streamPath); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d inside cooldown", resp.StatusCode)
	}

	// Heal the store, let the cooldown pass: the probe succeeds and the
	// breaker re-closes.
	for _, n := range []string{"dn0", "dn1", "dn2", "dn3"} {
		cluster.DataNode(n).SetDown(false)
	}
	now = now.Add(defaultBreakerCooldown + time.Second)
	resp, _ := b.get(streamPath)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("probe status = %d, want success", resp.StatusCode)
	}
	st := site.BreakerStats()
	if st.State != "closed" || st.Reclosed != 1 {
		t.Fatalf("breaker = %+v, want closed with one reclose", st)
	}
	if resp, _ := b.get(streamPath); resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("post-recovery status = %d", resp.StatusCode)
	}
}

// A failed half-open probe must re-open the breaker for a full cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	site, cluster := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("carol", "hunter2")
	watch := b.upload("clip", "d", 4, 13)
	streamPath := "/stream/" + strings.TrimPrefix(watch, "/watch/")

	now := time.Now()
	site.hdfsBreaker.now = func() time.Time { return now }

	for _, n := range []string{"dn0", "dn1", "dn2", "dn3"} {
		cluster.DataNode(n).SetDown(true)
	}
	for i := 0; i < defaultBreakerThreshold; i++ {
		b.get(streamPath)
	}
	// Cooldown passes but the store is still down: the probe fails and the
	// breaker re-opens.
	now = now.Add(defaultBreakerCooldown + time.Second)
	b.get(streamPath)
	st := site.BreakerStats()
	if st.State != "open" || st.Opened != 2 {
		t.Fatalf("breaker = %+v, want re-opened (Opened=2)", st)
	}
}

// A missing file is a data problem, not a store outage: it must never trip
// the breaker.
func TestBreakerIgnoresMissingFiles(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("dave", "hunter2")
	b.upload("clip", "d", 4, 17)

	// Point a row at a path that does not exist in the store.
	rows, _ := site.db.Scan("videos", func(videodb.Row) bool { return true })
	id := rows[0]["id"].(int64)
	if err := site.db.Update("videos", id, videodb.Row{"path": "videos/nope.vcf"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*defaultBreakerThreshold; i++ {
		resp, _ := b.get(fmt.Sprintf("/stream/%d", id))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("missing-file status = %d, want 500", resp.StatusCode)
		}
	}
	if st := site.BreakerStats(); st.State != "closed" || st.Opened != 0 {
		t.Fatalf("breaker = %+v after missing-file requests, want closed", st)
	}
}
