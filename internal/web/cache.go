package web

import (
	"sync"
)

// homeRecent is how many recent uploads the home page lists.
const homeRecent = 10

// hotCache is one replica's read-through cache. It holds exactly two things
// the hot path used to recompute per request: the home page's recent-uploads
// list (previously a full videodb scan per GET /) and the uploader-id →
// username map (previously an N+1 users lookup per rendered video).
//
// The recent list is fleet- and shard-aware: instead of a local boolean it
// is tagged with the fleetState.recentGen generation it was built at, so an
// invalidation on any replica (upload, edit, delete, block) is one atomic
// bump that stales every replica's copy at once. Rebuilds are single-flight:
// concurrent misses after an invalidation wait for one scan instead of each
// running their own — the thundering herd a viral upload used to trigger
// collapses to exactly one ScanLast per invalidation per replica.
//
// View-count drift in the cached list is acceptable because the home page
// renders titles only.
type hotCache struct {
	mu sync.Mutex
	// recent is valid when it is non-nil and recentGen matches the fleet
	// generation it was built at (scanRecent never returns nil).
	recent    []videoView
	recentGen int64
	// filling marks an in-flight rebuild; fillDone is closed when it
	// lands. Waiters re-check the generation on wake (the fill they
	// waited on may itself already be stale).
	filling  bool
	fillDone chan struct{}

	usernames map[int64]string
}

// recentVideos returns the home page's recent-uploads list, rebuilding at
// most once per invalidation generation regardless of how many requests miss
// concurrently. Callers must not mutate the returned slice.
func (s *Site) recentVideos() []videoView {
	c := &s.cache
	gen := s.state.recentGen.Load()
	c.mu.Lock()
	for {
		if c.recent != nil && c.recentGen == gen {
			out := c.recent
			c.mu.Unlock()
			s.reg.Counter("cache_recent_hits").Inc()
			return out
		}
		if !c.filling {
			break
		}
		// Another request is already rebuilding: wait for its result
		// rather than scanning again.
		done := c.fillDone
		c.mu.Unlock()
		s.reg.Counter("cache_recent_waits").Inc()
		<-done
		gen = s.state.recentGen.Load()
		c.mu.Lock()
	}
	c.filling = true
	c.fillDone = make(chan struct{})
	done := c.fillDone
	c.mu.Unlock()

	s.reg.Counter("cache_recent_misses").Inc()
	out := s.scanRecent()

	c.mu.Lock()
	c.recent, c.recentGen = out, gen
	c.filling = false
	c.mu.Unlock()
	close(done)
	return out
}

// scanRecent is the uncached rebuild: a bounded reverse scan returning only
// the newest homeRecent rows (videodb.ScanLast), not the full-table
// materialisation the pre-PR-7 path paid. It remains the correctness
// reference and the benchmark baseline; cache_recent_scans counts every
// execution so tests can assert single-flight behaviour.
func (s *Site) scanRecent() []videoView {
	s.reg.Counter("cache_recent_scans").Inc()
	rows, _ := s.db.ScanLast("videos", homeRecent)
	out := make([]videoView, 0, len(rows))
	for _, row := range rows {
		out = append(out, s.videoView(row))
	}
	return out
}

// invalidateRecent stales every fleet replica's cached recent list with one
// generation bump; each replica rebuilds lazily on its next home request.
func (s *Site) invalidateRecent() {
	s.state.recentGen.Add(1)
	s.reg.Counter("cache_recent_invalidations").Inc()
}

// userName resolves a user id to its username through the replica-local
// cache. Lookup failures (deleted user, malformed row) return fallback and
// are not cached.
func (s *Site) userName(id int64, fallback string) string {
	c := &s.cache
	c.mu.Lock()
	name, ok := c.usernames[id]
	c.mu.Unlock()
	if ok {
		s.reg.Counter("cache_username_hits").Inc()
		return name
	}
	s.reg.Counter("cache_username_misses").Inc()
	u, err := s.db.Get("users", id)
	if err != nil {
		return fallback
	}
	name = rowString(u, "username")
	if name == "" {
		return fallback
	}
	c.mu.Lock()
	if c.usernames == nil {
		c.usernames = make(map[int64]string)
	}
	c.usernames[id] = name
	c.mu.Unlock()
	return name
}

// invalidateUser drops one username entry from every replica's cache (admin
// block path — moderation must be visible fleet-wide immediately).
func (s *Site) invalidateUser(id int64) {
	s.state.cmu.Lock()
	caches := s.state.caches
	s.state.cmu.Unlock()
	for _, c := range caches {
		c.mu.Lock()
		delete(c.usernames, id)
		c.mu.Unlock()
	}
}
