package web

import (
	"sync"

	"videocloud/internal/videodb"
)

// homeRecent is how many recent uploads the home page lists.
const homeRecent = 10

// hotCache is the serving tier's read-through cache. It holds exactly two
// things the hot path used to recompute per request: the home page's
// recent-uploads list (previously a full videodb scan per GET /) and the
// uploader-id → username map (previously an N+1 users lookup per rendered
// video). Invalidation rules (see README "Serving-path metrics & caching"):
// the recent list is dropped on upload, edit, delete, and block; a username
// entry is dropped when the admin blocks that user. View-count drift in the
// cached list is acceptable because the home page renders titles only.
type hotCache struct {
	mu        sync.RWMutex
	recent    []videoView
	recentOK  bool
	usernames map[int64]string
}

// recentVideos returns the home page's recent-uploads list, rebuilding it
// from a table scan only after an invalidation. Callers must not mutate the
// returned slice.
func (s *Site) recentVideos() []videoView {
	s.cache.mu.RLock()
	if s.cache.recentOK {
		out := s.cache.recent
		s.cache.mu.RUnlock()
		s.reg.Counter("cache_recent_hits").Inc()
		return out
	}
	s.cache.mu.RUnlock()
	s.reg.Counter("cache_recent_misses").Inc()
	out := s.scanRecent()
	s.cache.mu.Lock()
	s.cache.recent, s.cache.recentOK = out, true
	s.cache.mu.Unlock()
	return out
}

// scanRecent is the uncached path — the full table scan every GET / paid
// before the cache existed. It remains the correctness reference and the
// benchmark baseline.
func (s *Site) scanRecent() []videoView {
	rows, _ := s.db.Scan("videos", func(videodb.Row) bool { return true })
	out := make([]videoView, 0, homeRecent)
	for i := len(rows) - 1; i >= 0 && len(out) < homeRecent; i-- {
		out = append(out, s.videoView(rows[i]))
	}
	return out
}

// invalidateRecent drops the cached recent list; the next home request
// rebuilds it.
func (s *Site) invalidateRecent() {
	s.cache.mu.Lock()
	s.cache.recent, s.cache.recentOK = nil, false
	s.cache.mu.Unlock()
	s.reg.Counter("cache_recent_invalidations").Inc()
}

// userName resolves a user id to its username through the cache. Lookup
// failures (deleted user, malformed row) return fallback and are not cached.
func (s *Site) userName(id int64, fallback string) string {
	s.cache.mu.RLock()
	name, ok := s.cache.usernames[id]
	s.cache.mu.RUnlock()
	if ok {
		s.reg.Counter("cache_username_hits").Inc()
		return name
	}
	s.reg.Counter("cache_username_misses").Inc()
	u, err := s.db.Get("users", id)
	if err != nil {
		return fallback
	}
	name = rowString(u, "username")
	if name == "" {
		return fallback
	}
	s.cache.mu.Lock()
	if s.cache.usernames == nil {
		s.cache.usernames = make(map[int64]string)
	}
	s.cache.usernames[id] = name
	s.cache.mu.Unlock()
	return name
}

// invalidateUser drops one username cache entry (admin block path).
func (s *Site) invalidateUser(id int64) {
	s.cache.mu.Lock()
	delete(s.cache.usernames, id)
	s.cache.mu.Unlock()
}
