package web

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"videocloud/internal/edge"
	"videocloud/internal/stream"
	"videocloud/internal/video"
)

// Segmented delivery: /playlist/{id} lists a title's renditions,
// /playlist/{id}/{quality} lists one rendition's time-indexed segments, and
// /segment/{id}/{quality}/{k} serves segment k's bytes. Every response is
// served through the replica's edge cache, so under fan-out the hot titles
// cost origin (HDFS for segments, the database for playlists) roughly one
// read per object per frontend instead of one per viewer. Playlists are
// cached with the live-edge TTL (they change: live channels grow, titles
// disappear); segments are write-once and cached without one. Warm segment
// hits go out on the same zero-copy vectored-write path as whole-file
// streaming: cache memory → net.Buffers → socket, no per-request copy.

// A cached segment must satisfy the zero-copy serving contract.
var _ stream.SliceRanger = (*edge.Content)(nil)

// segmentPath is where rendition label's segment k of a video lives in
// HDFS. Flat names under segments/ (no per-video directory level) keep the
// namespace layout identical to videos/.
func segmentPath(id int64, label string, k int) string {
	return fmt.Sprintf("segments/%d-%s-%d.vcf", id, label, k)
}

// errNotSegmented distinguishes "this row has no segment index" from a
// missing row.
var errNotSegmented = errors.New("web: video has no segments published")

// deliveryRow captures the catalog columns the delivery handlers need.
type deliveryRow struct {
	id         int64
	duration   int64
	segSeconds int64
	segments   int64
	live       bool
	labels     []string
}

// deliveryByRequest resolves the request's {id} to a segment-servable row.
// The error is user-facing via deliveryError.
func (s *Site) deliveryByRequest(r *http.Request) (deliveryRow, error) {
	var d deliveryRow
	row, err := s.videoByRequest(r)
	if err != nil {
		return d, err
	}
	// Tolerant reads throughout: rows written before segmented delivery
	// carry neither status nor segment columns and report errNotSegmented.
	status, _ := row["status"].(string)
	if status == statusProcessing {
		return d, errStillProcessing
	}
	d.id = rowInt(row, "id")
	d.duration = rowInt(row, "duration_seconds")
	d.segSeconds, _ = row["seg_seconds"].(int64)
	d.segments, _ = row["segments"].(int64)
	d.live = status == statusLive
	if labels := rowString(row, "renditions"); labels != "" {
		d.labels = strings.Split(labels, ",")
	}
	if d.segSeconds <= 0 || d.segments <= 0 || len(d.labels) == 0 {
		return d, errNotSegmented
	}
	return d, nil
}

var errStillProcessing = errors.New("web: video is still processing")

func (s *Site) deliveryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errStillProcessing):
		w.Header().Set("Retry-After", "2")
		http.Error(w, "video is still processing", http.StatusServiceUnavailable)
	case errors.Is(err, errNotSegmented):
		http.Error(w, "no segmented delivery for this video", http.StatusNotFound)
	default:
		http.Error(w, "video not found", http.StatusNotFound)
	}
}

// specForLabel maps a stored rendition label back to its encoding spec.
func (s *Site) specForLabel(label string) (video.Spec, bool) {
	if label == QualityLabel(s.target) {
		return s.target, true
	}
	for _, r := range s.renditions {
		if label == QualityLabel(r) {
			return r, true
		}
	}
	return video.Spec{}, false
}

// handlePlaylistMaster serves /playlist/{id}: the title's rendition ladder.
func (s *Site) handlePlaylistMaster(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("edge_playlist_requests").Inc()
	key := "pl/" + r.PathValue("id")
	data, src, err := s.edge.GetOrFill(key, s.liveTTL, func() ([]byte, error) {
		d, err := s.deliveryByRequest(r)
		if err != nil {
			return nil, err
		}
		var m stream.MasterPlaylist
		for _, label := range d.labels {
			spec, ok := s.specForLabel(label)
			if !ok {
				continue // label from a config this replica doesn't know
			}
			m.Renditions = append(m.Renditions, stream.Rendition{
				Label:        label,
				BandwidthBps: spec.BitrateBps,
				URL:          fmt.Sprintf("/playlist/%d/%s", d.id, label),
			})
		}
		if len(m.Renditions) == 0 {
			return nil, errNotSegmented
		}
		return m.Marshal(), nil
	})
	if err != nil {
		s.deliveryError(w, err)
		return
	}
	if src == edge.SourceFill {
		s.reg.Counter("edge_playlist_origin").Inc()
	}
	w.Header().Set("Content-Type", stream.PlaylistContentType)
	w.Write(data)
}

// handlePlaylistMedia serves /playlist/{id}/{quality}: one rendition's
// segment index. A live channel's playlist omits the end marker and keeps
// growing; the TTL bounds how stale a cached copy can be, so live viewers
// discover fresh segments within LiveEdgeTTL without every poll hitting the
// database.
func (s *Site) handlePlaylistMedia(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("edge_playlist_requests").Inc()
	label := r.PathValue("quality")
	key := "pl/" + r.PathValue("id") + "/" + label
	data, src, err := s.edge.GetOrFill(key, s.liveTTL, func() ([]byte, error) {
		d, err := s.deliveryByRequest(r)
		if err != nil {
			return nil, err
		}
		if !hasLabel(d.labels, label) {
			return nil, errNotSegmented
		}
		m := stream.MediaPlaylist{TargetDuration: int(d.segSeconds), Live: d.live}
		for k := 0; k < int(d.segments); k++ {
			m.Segments = append(m.Segments, stream.SegmentRef{
				Index:           k,
				DurationSeconds: video.SegmentPlaySeconds(int(d.duration), int(d.segSeconds), k),
				URL:             fmt.Sprintf("/segment/%d/%s/%d", d.id, label, k),
			})
		}
		return m.Marshal(), nil
	})
	if err != nil {
		s.deliveryError(w, err)
		return
	}
	if src == edge.SourceFill {
		s.reg.Counter("edge_playlist_origin").Inc()
	}
	w.Header().Set("Content-Type", stream.PlaylistContentType)
	w.Write(data)
}

func hasLabel(labels []string, label string) bool {
	for _, l := range labels {
		if l == label {
			return true
		}
	}
	return false
}

// handleSegment serves /segment/{id}/{quality}/{k} through the edge cache.
// The warm path touches neither the database nor HDFS: cache lookup, then
// the zero-copy slice write. Only a miss validates the request against the
// catalog and reads the segment object from origin HDFS (single-flight, so
// a flash crowd on an uncached segment costs one read).
func (s *Site) handleSegment(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("edge_segment_requests").Inc()
	key := "seg/" + r.PathValue("id") + "/" + r.PathValue("quality") + "/" + r.PathValue("k")
	if data, ok := s.edge.Get(key); ok {
		s.serveSegment(w, r, key, data)
		return
	}
	data, src, err := s.edge.GetOrFill(key, 0, func() ([]byte, error) {
		return s.readSegmentOrigin(r)
	})
	if err != nil {
		var storeErr *segmentStorageError
		if errors.As(err, &storeErr) {
			s.reg.Counter("stream_storage_errors").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(s.hdfsBreaker.RetryAfterSeconds()))
			http.Error(w, "video storage temporarily unavailable", http.StatusServiceUnavailable)
			return
		}
		s.deliveryError(w, err)
		return
	}
	if src == edge.SourceFill {
		s.reg.Counter("edge_segment_origin").Inc()
	}
	s.serveSegment(w, r, key, data)
}

// serveSegment writes cached segment bytes on the zero-copy slice path,
// paced through the replica's NIC model like every other media response.
// Egress is attributed to the video owner's tenant via the per-replica
// attribution cache, so warm edge hits stay off the database.
func (s *Site) serveSegment(w http.ResponseWriter, r *http.Request, name string, data []byte) {
	onFallback := func(string) { s.reg.Counter("stream_fallback_total").Inc() }
	content := edge.NewContent(data)
	mw := &meteredWriter{ResponseWriter: w}
	if s.streamPacer != nil {
		stream.ServeWithFallback(pacedWriter{ResponseWriter: mw, p: s.streamPacer}, r, name, content, onFallback)
	} else {
		stream.ServeWithFallback(mw, r, name, content, onFallback)
	}
	if id, err := strconv.ParseInt(r.PathValue("id"), 10, 64); err == nil {
		s.meterEgress(s.ownerTenant(id), mw.n)
	}
}

// segmentStorageError marks origin failures that should shed load (503)
// rather than 404.
type segmentStorageError struct{ err error }

func (e *segmentStorageError) Error() string { return e.err.Error() }
func (e *segmentStorageError) Unwrap() error { return e.err }

// readSegmentOrigin is the miss path: validate against the catalog, then
// read the segment object from HDFS under the streaming circuit breaker.
func (s *Site) readSegmentOrigin(r *http.Request) ([]byte, error) {
	d, err := s.deliveryByRequest(r)
	if err != nil {
		return nil, err
	}
	label := r.PathValue("quality")
	if !hasLabel(d.labels, label) {
		return nil, errNotSegmented
	}
	k, err := strconv.Atoi(r.PathValue("k"))
	if err != nil || k < 0 || int64(k) >= d.segments {
		return nil, fmt.Errorf("web: segment %q out of range: %w", r.PathValue("k"), errNotSegmented)
	}
	if !s.hdfsBreaker.Allow() {
		return nil, &segmentStorageError{errors.New("web: breaker open")}
	}
	data, err := s.store.ReadFileCtx(r.Context(), segmentPath(d.id, label, k))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// The row's problem, not the store's: don't trip the breaker.
			s.hdfsBreaker.Success()
			return nil, errNotSegmented
		}
		s.hdfsBreaker.Failure()
		log.Printf("web: storage failure reading %s (request %s): %v",
			segmentPath(d.id, label, k), requestIDFrom(r.Context()), err)
		return nil, &segmentStorageError{err}
	}
	s.hdfsBreaker.Success()
	return data, nil
}

// DeliveryConfig reports the segmentation parameters (experiments size
// their load against them).
func (s *Site) DeliveryConfig() (segSeconds int, liveTTL time.Duration) {
	return s.segSeconds, s.liveTTL
}
