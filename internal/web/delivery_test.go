package web

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"videocloud/internal/stream"
	"videocloud/internal/video"
)

// uploadVOD publishes one title through the full upload pipeline and
// returns its id.
func uploadVOD(t *testing.T, b *browser, seconds int) string {
	t.Helper()
	loc := b.upload("segmented title", "d", seconds, 11)
	return strings.TrimPrefix(loc, "/watch/")
}

func TestSegmentedDeliveryVOD(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("seguser", "pw")
	id := uploadVOD(t, b, 12) // 12s / 4s segments -> 3 segments

	resp, body := b.get("/playlist/" + id)
	if resp.StatusCode != 200 {
		t.Fatalf("master playlist: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != stream.PlaylistContentType {
		t.Fatalf("master Content-Type %q", ct)
	}
	master, err := stream.ParseMaster([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(master.Renditions) != 1 || master.Renditions[0].Label != "720p" {
		t.Fatalf("master renditions %+v", master.Renditions)
	}

	resp, body = b.get(master.Renditions[0].URL)
	if resp.StatusCode != 200 {
		t.Fatalf("media playlist: %d %s", resp.StatusCode, body)
	}
	media, err := stream.ParseMedia([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if media.Live || len(media.Segments) != 3 || media.TargetDuration != 4 {
		t.Fatalf("media playlist %+v", media)
	}

	// Segments are valid containers, contiguous on the GOP timeline, and
	// merge back into the published rendition byte for byte.
	var pieces [][]byte
	for _, seg := range media.Segments {
		resp, segBody := b.get(seg.URL)
		if resp.StatusCode != 200 {
			t.Fatalf("segment %d: %d", seg.Index, resp.StatusCode)
		}
		info, err := video.Probe([]byte(segBody))
		if err != nil {
			t.Fatalf("segment %d: %v", seg.Index, err)
		}
		if info.DurationSeconds != seg.DurationSeconds {
			t.Fatalf("segment %d plays %ds, playlist says %ds", seg.Index, info.DurationSeconds, seg.DurationSeconds)
		}
		pieces = append(pieces, []byte(segBody))
	}
	if _, err := video.Merge(pieces); err != nil {
		t.Fatalf("segments do not merge: %v", err)
	}

	// A second pass over the same objects is served from edge memory: the
	// origin counter must not move.
	origin0 := site.reg.Counter("edge_segment_origin").Value()
	for _, seg := range media.Segments {
		if resp, _ := b.get(seg.URL); resp.StatusCode != 200 {
			t.Fatalf("rewatch segment %d: %d", seg.Index, resp.StatusCode)
		}
	}
	if d := site.reg.Counter("edge_segment_origin").Value() - origin0; d != 0 {
		t.Fatalf("warm rewatch hit origin %d times", d)
	}
	if site.EdgeStats().Hits == 0 {
		t.Fatal("edge cache reports no hits")
	}
}

func TestSegmentRangeRequestsZeroCopy(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("ranger", "pw")
	id := uploadVOD(t, b, 8)
	url := fmt.Sprintf("/segment/%s/720p/0", id)

	resp, full := b.get(url)
	if resp.StatusCode != 200 {
		t.Fatalf("segment: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, b.srv.URL+url, nil)
	req.Header.Set("Range", "bytes=4-19")
	rresp, err := b.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusPartialContent || string(part) != full[4:20] {
		t.Fatalf("range on segment: %d, %d bytes", rresp.StatusCode, len(part))
	}
	if n := site.reg.Counter("stream_fallback_total").Value(); n != 0 {
		t.Fatalf("segment serving fell off the slice path %d times", n)
	}
}

func TestDeliveryRejectsUnknownObjects(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("u404", "pw")
	id := uploadVOD(t, b, 8)

	for _, path := range []string{
		"/playlist/999999",
		"/playlist/" + id + "/1080p",
		"/segment/" + id + "/720p/99",
		"/segment/" + id + "/720p/-1",
		"/segment/" + id + "/720p/x",
	} {
		if resp, _ := b.get(path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
	_ = site
}

func TestLiveChannelLifecycle(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	ctx := context.Background()

	id, err := site.CreateLiveChannel(ctx, site.AdminID(), "launch event", "live")
	if err != nil {
		t.Fatal(err)
	}
	// No segments yet: the playlist has nothing to serve.
	if resp, _ := b.get(fmt.Sprintf("/playlist/%d", id)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty channel playlist: %d", resp.StatusCode)
	}
	// And the whole-file endpoint points at segmented delivery.
	if resp, body := b.get(fmt.Sprintf("/stream/%d", id)); resp.StatusCode != http.StatusNotFound ||
		!strings.Contains(body, "/playlist/") {
		t.Fatalf("live /stream: %d %q", resp.StatusCode, body)
	}

	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 64_000}
	push := func(seconds int, seed uint64) {
		t.Helper()
		chunk, err := video.Generate(src, seconds, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := site.PushLiveSegment(ctx, id, chunk); err != nil {
			t.Fatal(err)
		}
	}
	push(4, 1)
	push(4, 2)

	// The live playlist carries no end marker and grows with pushes. The
	// edge cache may serve a copy up to LiveEdgeTTL stale, so poll past it.
	_, ttl := site.DeliveryConfig()
	deadline := time.Now().Add(50 * ttl)
	var media stream.MediaPlaylist
	for {
		resp, body := b.get(fmt.Sprintf("/playlist/%d/720p", id))
		if resp.StatusCode != 200 {
			t.Fatalf("live media playlist: %d", resp.StatusCode)
		}
		if media, err = stream.ParseMedia([]byte(body)); err != nil {
			t.Fatal(err)
		}
		if len(media.Segments) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("playlist stuck at %d segments, want 2", len(media.Segments))
		}
		time.Sleep(ttl / 4)
	}
	if !media.Live {
		t.Fatal("live playlist carries an end marker")
	}

	// A short final segment, then end: becomes watchable VOD.
	push(2, 3)
	if _, err := site.PushLiveSegment(ctx, id, mustGenerate(t, src, 4, 4)); err == nil {
		t.Fatal("push after a short segment was accepted")
	}
	if err := site.EndLiveChannel(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := site.EndLiveChannel(ctx, id); err == nil {
		t.Fatal("double EndLiveChannel was accepted")
	}

	// Past the TTL the playlist shows the end marker; segments merge into
	// one contiguous 10s container.
	deadline = time.Now().Add(50 * ttl)
	for {
		_, body := b.get(fmt.Sprintf("/playlist/%d/720p", id))
		if media, err = stream.ParseMedia([]byte(body)); err != nil {
			t.Fatal(err)
		}
		if !media.Live && len(media.Segments) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ended playlist: live=%v segments=%d", media.Live, len(media.Segments))
		}
		time.Sleep(ttl / 4)
	}
	var pieces [][]byte
	for _, seg := range media.Segments {
		_, segBody := b.get(seg.URL)
		pieces = append(pieces, []byte(segBody))
	}
	merged, err := video.Merge(pieces)
	if err != nil {
		t.Fatalf("live segments do not merge: %v", err)
	}
	info, err := video.Probe(merged)
	if err != nil || info.DurationSeconds != 10 {
		t.Fatalf("merged live channel: %+v, %v (want 10s)", info, err)
	}
}

func mustGenerate(t *testing.T, spec video.Spec, seconds int, seed uint64) []byte {
	t.Helper()
	data, err := video.Generate(spec, seconds, seed)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestABRSessionAgainstSite(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("abr", "pw")
	id := uploadVOD(t, b, 16)

	p := &stream.ABRPlayer{}
	rep, err := p.Play(b.srv.URL + "/playlist/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EndReached || rep.Segments != 4 || rep.PlayedSeconds != 16 {
		t.Fatalf("ABR session %+v", rep)
	}
}
