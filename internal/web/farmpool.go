package web

import (
	"context"
	"errors"
	"sort"
	"sync"

	"videocloud/internal/video"
)

// farmPool manages the conversion farm's node set at runtime — the web-tier
// half of elastic scaling. The nebula controller adds a node when its VM
// reaches Running, marks it draining when scale-down begins (no new
// conversions are assigned, in-flight ones finish), and removes it once the
// drain completes. Expel is the drain-deadline/host-crash path: conversions
// still using the node are cancelled with errFarmNodeExpelled so the
// transcode layer retries them on the surviving nodes instead of failing the
// upload — requeue, not drop.
//
// Every conversion snapshots the assignable node set (video.Farm is a value
// type) and registers itself per node, so per-node in-flight counts are exact
// and a drain can wait for precisely the conversions that node touches.
type farmPool struct {
	mu       sync.Mutex
	base     video.Farm      // carries speed/bandwidth params + fallback nodes
	active   []string        // assignable nodes, stable order
	draining map[string]bool // still finishing in-flight work, no new ones
	nextConv int64
	convs    map[int64]*poolConv
	inflight map[string]int // node → conversions whose snapshot includes it
}

// poolConv is one registered in-flight conversion.
type poolConv struct {
	nodes  []string
	cancel context.CancelCauseFunc
}

// errFarmNodeExpelled is the cancellation cause used when a node is yanked
// mid-conversion (drain deadline expired or its host died); the transcode
// path retries on it rather than failing the upload.
var errFarmNodeExpelled = errors.New("web: farm node expelled mid-conversion")

func newFarmPool(base video.Farm) *farmPool {
	return &farmPool{
		base:     base,
		active:   append([]string(nil), base.Nodes...),
		draining: make(map[string]bool),
		convs:    make(map[int64]*poolConv),
		inflight: make(map[string]int),
	}
}

// acquire snapshots the assignable node set for one conversion. It returns a
// context cancelled if any snapshot node is expelled, the farm to convert
// with, and a release func the caller must run when the conversion finishes.
func (p *farmPool) acquire(ctx context.Context) (context.Context, video.Farm, func()) {
	p.mu.Lock()
	nodes := make([]string, 0, len(p.active))
	for _, n := range p.active {
		if !p.draining[n] {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		// Liveness fallback: never refuse a conversion outright — the
		// statically provisioned base nodes always exist even if every
		// elastic node is mid-retirement.
		nodes = append(nodes, p.base.Nodes...)
	}
	cctx, cancel := context.WithCancelCause(ctx)
	p.nextConv++
	id := p.nextConv
	p.convs[id] = &poolConv{nodes: nodes, cancel: cancel}
	for _, n := range nodes {
		p.inflight[n]++
	}
	p.mu.Unlock()

	release := func() {
		p.mu.Lock()
		if c, ok := p.convs[id]; ok {
			delete(p.convs, id)
			for _, n := range c.nodes {
				if p.inflight[n]--; p.inflight[n] <= 0 {
					delete(p.inflight, n)
				}
			}
		}
		p.mu.Unlock()
		cancel(nil) // free the cause context; no-op if already cancelled
	}
	return cctx, p.base.WithNodes(nodes), release
}

// add registers a node (a fleet VM that reached Running) — or returns a
// draining node to service (scale-out reclaimed it before it finished).
func (p *farmPool) add(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining[name] {
		delete(p.draining, name)
		return
	}
	for _, n := range p.active {
		if n == name {
			return
		}
	}
	p.active = append(p.active, name)
}

// drain stops assigning the node new conversions; in-flight ones finish.
func (p *farmPool) drain(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range p.active {
		if n == name {
			p.draining[name] = true
			return
		}
	}
}

// remove deletes the node from the pool entirely (drain completed).
func (p *farmPool) remove(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.draining, name)
	kept := p.active[:0]
	for _, n := range p.active {
		if n != name {
			kept = append(kept, n)
		}
	}
	p.active = kept
}

// expel cancels every conversion whose snapshot includes the node, with
// errFarmNodeExpelled as the cause, and removes the node. The transcode
// layer's retry loop requeues the cancelled work on the remaining nodes.
func (p *farmPool) expel(name string) int {
	p.mu.Lock()
	var cancels []context.CancelCauseFunc
	for _, c := range p.convs {
		for _, n := range c.nodes {
			if n == name {
				cancels = append(cancels, c.cancel)
				break
			}
		}
	}
	delete(p.draining, name)
	kept := p.active[:0]
	for _, n := range p.active {
		if n != name {
			kept = append(kept, n)
		}
	}
	p.active = kept
	p.mu.Unlock()
	for _, cancel := range cancels {
		cancel(errFarmNodeExpelled)
	}
	return len(cancels)
}

// nodeInFlight reports conversions currently using the node.
func (p *farmPool) nodeInFlight(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inflight[name]
}

// activeConversions reports conversions in flight across the pool.
func (p *farmPool) activeConversions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.convs)
}

// snapshot returns the node list (draining included, flagged) and per-node
// in-flight counts for dashboards.
func (p *farmPool) snapshot() ([]FarmNodeStat, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FarmNodeStat, 0, len(p.active))
	for _, n := range p.active {
		out = append(out, FarmNodeStat{
			Node: n, InFlight: p.inflight[n], Draining: p.draining[n],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out, len(p.convs)
}

// FarmNodeStat is one conversion node's dashboard row.
type FarmNodeStat struct {
	Node     string
	InFlight int
	Draining bool
}

// ---- Site-level farm management API (the elastic controller's hooks) ----

// AddFarmNode adds (or un-drains) a conversion node at runtime.
func (s *Site) AddFarmNode(name string) { s.pool.add(name) }

// DrainFarmNode stops assigning the node new conversions.
func (s *Site) DrainFarmNode(name string) { s.pool.drain(name) }

// RemoveFarmNode removes a node whose drain completed.
func (s *Site) RemoveFarmNode(name string) { s.pool.remove(name) }

// ExpelFarmNode yanks a node immediately: conversions using it are cancelled
// and transparently retried on the remaining nodes. Returns how many
// conversions were interrupted.
func (s *Site) ExpelFarmNode(name string) int {
	n := s.pool.expel(name)
	if n > 0 {
		s.reg.Counter("farm_expels").Add(int64(n))
	}
	return n
}

// FarmNodeInFlight reports conversions currently using the node — the drain
// poll's signal.
func (s *Site) FarmNodeInFlight(name string) int { return s.pool.nodeInFlight(name) }

// FarmNodes reports the pool's node rows for dashboards.
func (s *Site) FarmNodes() []FarmNodeStat {
	rows, _ := s.pool.snapshot()
	return rows
}

// TranscodeLoad is the elasticity signal: jobs waiting in the intake queue
// plus conversions executing right now (uploads and live pushes alike).
func (s *Site) TranscodeLoad() int {
	load := s.pool.activeConversions()
	if q := s.queue; q != nil {
		load += q.fq.Len()
	}
	return load
}
