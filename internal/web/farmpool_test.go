package web

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"videocloud/internal/video"
)

// Pool mechanics: drain gates assignment, add un-drains, remove deletes,
// expel cancels exactly the conversions whose snapshot includes the node,
// and an all-drained pool falls back to the base nodes rather than refusing
// conversions.
func TestFarmPoolLifecycle(t *testing.T) {
	base := video.Farm{Nodes: []string{"a", "b"}}
	p := newFarmPool(base)

	ctx1, farm1, release1 := p.acquire(context.Background())
	if len(farm1.Nodes) != 2 {
		t.Fatalf("initial snapshot = %v", farm1.Nodes)
	}
	if p.nodeInFlight("a") != 1 || p.nodeInFlight("b") != 1 {
		t.Fatal("acquire did not register per-node in-flight")
	}

	// Draining b: new snapshots exclude it, the in-flight conversion keeps it.
	p.drain("b")
	_, farm2, release2 := p.acquire(context.Background())
	if len(farm2.Nodes) != 1 || farm2.Nodes[0] != "a" {
		t.Fatalf("snapshot during drain = %v, want [a]", farm2.Nodes)
	}
	rows, active := p.snapshot()
	if active != 2 {
		t.Fatalf("active conversions = %d", active)
	}
	drainingB := false
	for _, r := range rows {
		if r.Node == "b" && r.Draining {
			drainingB = true
		}
	}
	if !drainingB {
		t.Fatalf("snapshot rows = %+v, want b draining", rows)
	}

	// Reclaim: add on a draining node returns it to service.
	p.add("b")
	_, farm3, release3 := p.acquire(context.Background())
	if len(farm3.Nodes) != 2 {
		t.Fatalf("snapshot after reclaim = %v", farm3.Nodes)
	}
	release3()

	// Expel b: conv1 and conv3 used it, conv2 did not.
	n := p.expel("b")
	if n != 1 {
		t.Fatalf("expel interrupted %d conversions, want 1 (conv2 excluded b)", n)
	}
	if cause := context.Cause(ctx1); !errors.Is(cause, errFarmNodeExpelled) {
		t.Fatalf("conv1 cause = %v", cause)
	}
	release1()
	release2()

	// Everything drained: the liveness fallback hands out the base nodes.
	p.drain("a")
	_, farm4, release4 := p.acquire(context.Background())
	if len(farm4.Nodes) != 2 {
		t.Fatalf("all-drained fallback = %v, want base nodes", farm4.Nodes)
	}
	release4()

	p.remove("a")
	if rows, _ := p.snapshot(); len(rows) != 0 {
		t.Fatalf("rows after remove = %+v", rows)
	}
	if p.activeConversions() != 0 {
		t.Fatal("releases did not drain the registry")
	}
}

// Satellite: a scale-down in the middle of an upload burst must not lose or
// kill a single accepted transcode. The drained node's in-flight conversions
// are cancelled at the deadline (expel) and transparently retried on the
// surviving nodes — requeued, not dropped. Run under -race by `make tier1`.
func TestScaleDownMidBurstCompletesEverything(t *testing.T) {
	// Segments are work-stolen off a shared channel, so no particular node
	// is guaranteed work: the victim is whichever node first picks up a
	// segment, and from then on only that node stalls.
	var mu sync.Mutex
	victim := ""
	blocked := make(chan struct{}) // closed when the victim first stalls a conversion
	release := make(chan struct{}) // closed by the test after the expel
	hook := func(node string, segment int) error {
		mu.Lock()
		if victim == "" {
			victim = node
			mu.Unlock()
			close(blocked)
			<-release
			return nil
		}
		stall := node == victim
		mu.Unlock()
		if stall {
			<-release
		}
		return nil
	}
	site := asyncSite(t, 2, 32, hook)
	defer func() {
		select {
		case <-release:
		default:
			close(release) // a failing test must still unpark the farm
		}
	}()

	var ids []int64
	for i := 0; i < 6; i++ {
		id, err := site.ProcessUpload(context.Background(), site.AdminID(),
			fmt.Sprintf("burst-%d", i), "mid-burst scale-down", testUploadMedia(t, 12, uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	<-blocked // at least one conversion is now pinned on the victim node

	// Scale-down: drain first (no new work), then the deadline expires and
	// the node is expelled with work still in flight.
	site.DrainFarmNode(victim)
	deadline := time.Now().Add(5 * time.Second)
	for site.FarmNodeInFlight(victim) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no in-flight work registered on %s", victim)
		}
		time.Sleep(time.Millisecond)
	}
	interrupted := site.ExpelFarmNode(victim)
	if interrupted == 0 {
		t.Fatal("expel interrupted nothing")
	}
	close(release)
	site.DrainTranscodes()

	// Zero lost, zero killed: every accepted upload reached "ready".
	for _, id := range ids {
		if got := videoStatus(t, site, id); got != statusReady {
			t.Fatalf("video %d = %q after scale-down, want %q", id, got, statusReady)
		}
	}
	st := site.TranscodeStats()
	if st.Failed != 0 || st.Completed != int64(len(ids)) {
		t.Fatalf("stats = %+v, want all %d completed", st, len(ids))
	}
	if st.Requeues == 0 {
		t.Fatal("expelled conversions were not requeued")
	}
	for _, row := range st.Nodes {
		if row.Node == victim {
			t.Fatalf("%s still in the pool: %+v", victim, st.Nodes)
		}
	}
	if site.FarmNodeInFlight(victim) != 0 {
		t.Fatal("in-flight count leaked for the expelled node")
	}
}

// The queue-depth and wait-tail gauges the elastic controller scales on are
// surfaced in TranscodeStats.
func TestTranscodeLoadAndWaitGauges(t *testing.T) {
	gate := make(chan struct{})
	var openOnce sync.Once
	open := func() { openOnce.Do(func() { close(gate) }) }
	defer open()
	site := asyncSite(t, 1, 8, func(string, int) error {
		<-gate
		return nil
	})

	for i := 0; i < 3; i++ {
		if _, err := site.ProcessUpload(context.Background(), site.AdminID(),
			fmt.Sprintf("queued-%d", i), "", testUploadMedia(t, 4, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for site.TranscodeLoad() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("TranscodeLoad = %d, want >= 3 (queued + in flight)", site.TranscodeLoad())
		}
		time.Sleep(time.Millisecond)
	}
	open()
	site.DrainTranscodes()

	if site.TranscodeLoad() != 0 {
		t.Fatalf("TranscodeLoad after drain = %d", site.TranscodeLoad())
	}
	st := site.TranscodeStats()
	if st.WaitP99Seconds <= 0 {
		t.Fatalf("WaitP99Seconds = %v, want > 0 (jobs waited behind the gate)", st.WaitP99Seconds)
	}
	if st.QueueDepth != 0 || st.ActiveConversions != 0 {
		t.Fatalf("post-drain gauges = %+v", st)
	}
	if len(st.Nodes) == 0 {
		t.Fatal("no per-node rows")
	}
}
