package web

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// newFleet builds a primary plus n-1 replicas over one sharded metadata
// store and one HDFS-backed mount.
func newFleet(t testing.TB, n, shards int) []*Site {
	t.Helper()
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		t.Fatal(err)
	}
	var db videodb.Store
	if shards > 1 {
		db = videodb.NewSharded(shards)
	}
	cfg := Config{
		Store:         mount,
		DB:            db,
		Farm:          video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target:        video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000},
		AdminUser:     "admin",
		AdminPassword: "secret",
	}
	primary, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sites := []*Site{primary}
	for i := 1; i < n; i++ {
		rep, rerr := NewReplica(cfg, primary)
		if rerr != nil {
			t.Fatal(rerr)
		}
		sites = append(sites, rep)
	}
	return sites
}

func uploadTestVideo(t testing.TB, s *Site, title string, seed uint64) int64 {
	t.Helper()
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 50_000}
	data, err := video.Generate(src, 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.ProcessUpload(context.Background(), 1, title, "fleet test video", data)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestRecentVideosSingleFlight is the miss-stampede regression test: after
// one invalidation, 50 concurrent home-page requests must trigger exactly
// one catalog scan, not 50 (run under -race in tier-1).
func TestRecentVideosSingleFlight(t *testing.T) {
	sites := newFleet(t, 1, 1)
	site := sites[0]
	for i := 0; i < 3; i++ {
		uploadTestVideo(t, site, fmt.Sprintf("video %d", i), uint64(i+1))
	}
	scans := site.Metrics().Counter("cache_recent_scans")
	// Warm once, then invalidate: the next wave all misses at the same
	// generation.
	site.recentVideos()
	base := scans.Value()
	site.invalidateRecent()

	const herd = 50
	var wg sync.WaitGroup
	start := make(chan struct{})
	lists := make([][]videoView, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			lists[i] = site.recentVideos()
		}(i)
	}
	close(start)
	wg.Wait()
	if got := scans.Value() - base; got != 1 {
		t.Fatalf("%d concurrent misses ran %d scans, want exactly 1", herd, got)
	}
	for i, l := range lists {
		if len(l) != 3 {
			t.Fatalf("goroutine %d saw %d videos, want 3", i, len(l))
		}
	}
	// A second invalidation permits exactly one more rebuild.
	site.invalidateRecent()
	site.recentVideos()
	site.recentVideos()
	if got := scans.Value() - base; got != 2 {
		t.Fatalf("after second invalidation: %d scans total, want 2", got)
	}
}

// TestFleetSharedMetadata drives a 3-replica fleet over a 4-shard store:
// uploads, sessions, and moderation must be visible on every replica.
func TestFleetSharedMetadata(t *testing.T) {
	sites := newFleet(t, 3, 4)
	id := uploadTestVideo(t, sites[0], "shared dance video", 7)

	// Every replica serves the upload's watch page and finds it in search.
	for i, s := range sites {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/watch/%d", id), nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), "shared dance video") {
			t.Fatalf("replica %d watch: status %d", i, rec.Code)
		}
		rec = httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=dance", nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), "shared dance video") {
			t.Fatalf("replica %d search missed the upload", i)
		}
	}

	// A session minted on replica 1 authenticates on replica 2.
	srv1 := httptest.NewServer(sites[1])
	defer srv1.Close()
	srv2 := httptest.NewServer(sites[2])
	defer srv2.Close()
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	resp, err := client.PostForm(srv1.URL+"/login",
		url.Values{"username": {"admin"}, "password": {"secret"}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// The cookie jar is keyed by host; re-plant the session cookie for
	// srv2's address to model one ingress hostname.
	u1, _ := url.Parse(srv1.URL)
	u2, _ := url.Parse(srv2.URL)
	jar.SetCookies(u2, jar.Cookies(u1))
	resp, err = client.Get(srv2.URL + "/admin")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cross-replica admin page: status %d body %s", resp.StatusCode, body)
	}
}

// TestFleetInvalidationBroadcast verifies one replica's upload stales every
// replica's home cache, and an admin block on one replica drops the
// username from all replicas' caches.
func TestFleetInvalidationBroadcast(t *testing.T) {
	sites := newFleet(t, 2, 2)
	a, b := sites[0], sites[1]
	uploadTestVideo(t, a, "first", 11)

	// Warm both replicas' home caches.
	if got := len(a.recentVideos()); got != 1 {
		t.Fatalf("replica a warm: %d videos", got)
	}
	if got := len(b.recentVideos()); got != 1 {
		t.Fatalf("replica b warm: %d videos", got)
	}

	// Upload through replica a; replica b's cache must rebuild.
	uploadTestVideo(t, a, "second", 12)
	if got := len(b.recentVideos()); got != 2 {
		t.Fatalf("replica b served stale recent list: %d videos, want 2", got)
	}
	if got := len(a.recentVideos()); got != 2 {
		t.Fatalf("replica a served stale recent list: %d videos, want 2", got)
	}

	// Warm username caches on both replicas, then block the user through a.
	if name := a.userName(1, "?"); name != "admin" {
		t.Fatalf("username on a: %q", name)
	}
	if name := b.userName(1, "?"); name != "admin" {
		t.Fatalf("username on b: %q", name)
	}
	a.invalidateUser(1)
	for _, s := range sites {
		s.cache.mu.Lock()
		_, cached := s.cache.usernames[1]
		s.cache.mu.Unlock()
		if cached {
			t.Fatal("invalidateUser left a replica's cache entry behind")
		}
	}
}

// TestStreamPacer bounds a paced replica's egress rate: a 1 MB read through
// a 4 MB/s pacer cannot complete in under ~(size-burst)/rate seconds.
func TestStreamPacer(t *testing.T) {
	p := newPacer(4 << 20)
	start := time.Now()
	// Burst credit covers the first 4 MiB-worth instantly; acquire 6 MiB
	// total so at least ~0.5s of pacing is required.
	for i := 0; i < 24; i++ {
		p.acquire(256 << 10)
	}
	elapsed := time.Since(start)
	if elapsed < 400*time.Millisecond {
		t.Fatalf("pacer let 6MiB through a 4MiB/s bucket in %v", elapsed)
	}
	// Nil pacer is free.
	var np *pacer
	np.acquire(1 << 30)
}
