package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"videocloud/internal/search"
	"videocloud/internal/stream"
	"videocloud/internal/tenant"
	"videocloud/internal/trace"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// maxUploadBytes bounds multipart uploads (a DVD-quality hour).
const maxUploadBytes = 512 << 20

func (s *Site) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.instrument("home", s.handleHome))
	mux.HandleFunc("GET /search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("GET /suggest", s.instrument("suggest", s.handleSuggest))
	mux.HandleFunc("GET /register", s.instrument("register", s.handleRegisterPage))
	mux.HandleFunc("POST /register", s.instrument("register", s.handleRegister))
	mux.HandleFunc("GET /verify", s.instrument("verify", s.handleVerify))
	mux.HandleFunc("GET /login", s.instrument("login", s.handleLoginPage))
	mux.HandleFunc("POST /login", s.instrument("login", s.handleLogin))
	mux.HandleFunc("POST /logout", s.instrument("logout", s.handleLogout))
	mux.HandleFunc("GET /upload", s.instrument("upload", s.handleUploadPage))
	mux.HandleFunc("POST /upload", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("GET /watch/{id}", s.instrument("watch", s.handleWatch))
	mux.HandleFunc("GET /stream/{id}", s.instrument("stream", s.handleStream))
	mux.HandleFunc("GET /playlist/{id}", s.instrument("playlist", s.handlePlaylistMaster))
	mux.HandleFunc("GET /playlist/{id}/{quality}", s.instrument("playlist", s.handlePlaylistMedia))
	mux.HandleFunc("GET /segment/{id}/{quality}/{k}", s.instrument("segment", s.handleSegment))
	mux.HandleFunc("POST /watch/{id}/comment", s.instrument("comment", s.handleComment))
	mux.HandleFunc("POST /watch/{id}/report", s.instrument("report", s.handleReport))
	mux.HandleFunc("POST /watch/{id}/delete", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("POST /watch/{id}/edit", s.instrument("edit", s.handleEdit))
	mux.HandleFunc("GET /my", s.instrument("my", s.handleMy))
	mux.HandleFunc("GET /admin", s.instrument("admin", s.handleAdmin))
	mux.HandleFunc("POST /admin/block", s.instrument("block", s.handleBlock))
	return mux
}

// ---- safe row accessors ----
//
// videodb validates types on Insert/Update, but a row written by an older
// binary or a drifted schema (the real MySQL deployment's failure mode,
// reproducible via videodb.RawPut) can still carry the wrong type. An
// unchecked assertion would panic the handler goroutine; these log once per
// access and fall back to the zero value so the page renders a placeholder
// or a clean 500 instead.

func logMalformed(row videodb.Row, col, want string) {
	log.Printf("web: malformed row id=%v: column %q holds %T, want %s", row["id"], col, row[col], want)
}

func rowString(row videodb.Row, col string) string {
	v, ok := row[col].(string)
	if !ok {
		logMalformed(row, col, "string")
	}
	return v
}

func rowInt(row videodb.Row, col string) int64 {
	v, ok := row[col].(int64)
	if !ok {
		logMalformed(row, col, "int64")
	}
	return v
}

func rowBool(row videodb.Row, col string) bool {
	v, ok := row[col].(bool)
	if !ok {
		logMalformed(row, col, "bool")
	}
	return v
}

func (s *Site) render(w http.ResponseWriter, r *http.Request, v view) {
	if u := s.currentUser(r); u != nil {
		v.User = rowString(u, "username")
		v.Admin = rowBool(u, "admin")
	}
	if v.Title == "" {
		v.Title = v.Page
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTpl.ExecuteTemplate(w, "shell", v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Site) videoView(row videodb.Row) videoView {
	title := rowString(row, "title")
	if title == "" {
		title = "(untitled)"
	}
	// Tolerant read: rows from older binaries have no status column and
	// render as ready.
	status, _ := row["status"].(string)
	return videoView{
		Status:      status,
		ID:          rowInt(row, "id"),
		Title:       title,
		Description: rowString(row, "description"),
		Uploader:    s.userName(rowInt(row, "uploader_id"), "unknown"),
		Duration:    rowInt(row, "duration_seconds"),
		Views:       rowInt(row, "views"),
		Reports:     rowInt(row, "reports"),
	}
}

// ---- home & search (Figures 17-18) ----

func (s *Site) handleHome(w http.ResponseWriter, r *http.Request) {
	v := view{Page: "home", Title: "Search"}
	// Most recent first, capped at 10, served from the hot-path cache
	// instead of a per-request table scan.
	v.Recent = s.recentVideos()
	s.render(w, r, v)
}

// handleSearch serves /search?q=...; engine=scan selects the direct
// database LIKE-scan baseline instead of the inverted index.
func (s *Site) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.FormValue("q")
	v := view{Page: "home", Title: "Search", Query: q}
	if q != "" {
		s.reg.Counter("searches").Inc()
		if r.FormValue("engine") == "scan" {
			v.Hits = s.searchByScan(q)
		} else {
			v.Hits = s.searchByIndex(q)
		}
	}
	s.render(w, r, v)
}

// handleSuggest serves search-box type-ahead as a JSON array (the jQuery
// autocomplete a 2012 video site would wire to the search field).
func (s *Site) handleSuggest(w http.ResponseWriter, r *http.Request) {
	suggestions := s.Index().Suggest(r.FormValue("q"), 8)
	if suggestions == nil {
		suggestions = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(suggestions)
}

func (s *Site) searchByIndex(q string) []videoView {
	var out []videoView
	for _, hit := range s.Index().Search(q, 25) {
		if row, err := s.db.Get("videos", hit.Doc); err == nil {
			out = append(out, s.videoView(row))
		}
	}
	return out
}

func (s *Site) searchByScan(q string) []videoView {
	lower := strings.ToLower(q)
	rows, _ := s.db.Scan("videos", func(r videodb.Row) bool {
		// Tolerate drifted rows without per-row log noise.
		title, _ := r["title"].(string)
		desc, _ := r["description"].(string)
		return strings.Contains(strings.ToLower(title), lower) ||
			strings.Contains(strings.ToLower(desc), lower)
	})
	var out []videoView
	for _, row := range rows {
		if len(out) == 25 {
			break
		}
		out = append(out, s.videoView(row))
	}
	return out
}

// ---- register / verify / login / logout (Figures 19-21) ----

func (s *Site) handleRegisterPage(w http.ResponseWriter, r *http.Request) {
	s.render(w, r, view{Page: "register", Title: "Register"})
}

func (s *Site) handleRegister(w http.ResponseWriter, r *http.Request) {
	id, err := s.register(r.FormValue("username"), r.FormValue("password"), r.FormValue("email"), false)
	if err != nil {
		s.render(w, r, view{Page: "register", Title: "Register", Error: err.Error()})
		return
	}
	// The paper verifies membership "via e-mail"; with no mailbox in the
	// testbed the verification link is returned in a header (the
	// simulated email) and the page tells the user to check mail.
	token := randomToken()
	s.state.mu.Lock()
	if s.state.verifyTokens == nil {
		s.state.verifyTokens = make(map[[32]byte]int64)
	}
	s.state.verifyTokens[tenant.HashToken(token)] = id
	s.state.mu.Unlock()
	w.Header().Set("X-Verification-Link", "/verify?token="+token)
	s.render(w, r, view{Page: "login", Title: "Log in",
		Error: "Registered. Check your email for the verification link."})
}

func (s *Site) handleVerify(w http.ResponseWriter, r *http.Request) {
	token := r.FormValue("token")
	s.state.mu.Lock()
	id, ok := s.state.verifyTokens[tenant.HashToken(token)]
	if ok {
		delete(s.state.verifyTokens, tenant.HashToken(token))
	}
	s.state.mu.Unlock()
	if !ok {
		http.Error(w, "bad verification token", http.StatusBadRequest)
		return
	}
	if err := s.verifyUser(id); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.render(w, r, view{Page: "login", Title: "Log in", Error: "Account verified — you can log in now."})
}

func (s *Site) handleLoginPage(w http.ResponseWriter, r *http.Request) {
	s.render(w, r, view{Page: "login", Title: "Log in"})
}

func (s *Site) handleLogin(w http.ResponseWriter, r *http.Request) {
	token, err := s.login(r.FormValue("username"), r.FormValue("password"))
	if err != nil {
		s.render(w, r, view{Page: "login", Title: "Log in", Error: err.Error()})
		return
	}
	http.SetCookie(w, &http.Cookie{Name: "session", Value: token, Path: "/"})
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Site) handleLogout(w http.ResponseWriter, r *http.Request) {
	if c, err := r.Cookie("session"); err == nil {
		s.logout(c.Value)
	}
	http.SetCookie(w, &http.Cookie{Name: "session", Value: "", Path: "/", MaxAge: -1})
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// ---- upload (Figure 22) ----

func (s *Site) handleUploadPage(w http.ResponseWriter, r *http.Request) {
	s.render(w, r, view{Page: "upload", Title: "Upload"})
}

func (s *Site) handleUpload(w http.ResponseWriter, r *http.Request) {
	p := s.principal(r)
	if p == nil {
		http.Error(w, "log in to upload", http.StatusUnauthorized)
		return
	}
	if !p.role.CanWrite() {
		http.Error(w, "read-only token cannot upload", http.StatusForbidden)
		return
	}
	// Receiving the body is a real cost on large uploads; giving it a span
	// keeps it out of the root's unattributed self-time.
	bsp := trace.FromContext(r.Context()).StartChild("web.receive_body")
	if err := r.ParseMultipartForm(maxUploadBytes); err != nil {
		bsp.SetError(err)
		bsp.End()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	file, _, err := r.FormFile("video")
	if err != nil {
		bsp.End()
		http.Error(w, "missing video file", http.StatusBadRequest)
		return
	}
	defer file.Close()
	data, err := io.ReadAll(io.LimitReader(file, maxUploadBytes))
	if err != nil {
		bsp.SetError(err)
		bsp.End()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bsp.AnnotateInt("bytes", int64(len(data)))
	bsp.End()
	title := strings.TrimSpace(r.FormValue("title"))
	if title == "" {
		http.Error(w, "title required", http.StatusBadRequest)
		return
	}
	// Session principals carry their tenant on the context too, so the
	// quota/ledger path below sees one identity shape for both auth modes.
	ctx := r.Context()
	if _, _, ok := tenant.FromContext(ctx); !ok && p.ten != nil {
		ctx = tenant.WithContext(ctx, p.ten, p.role)
	}
	id, err := s.ProcessUpload(ctx, p.userID, title, r.FormValue("description"), data)
	if err != nil {
		if s.writeTenantError(w, err) {
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, fmt.Sprintf("/watch/%d", id), http.StatusSeeOther)
}

// ProcessUpload runs the paper's upload pipeline (Figures 14 and 16): probe
// the file, record film metadata in the database, convert it to the playback
// target plus every rendition in one farm pass, store the results through
// the FUSE mount into HDFS, and index it for search. Exposed so experiments
// can drive uploads without HTTP multipart overhead.
//
// With TranscodeWorkers configured the conversion happens asynchronously:
// the call returns the video id as soon as the row (status "processing") is
// queued, and the pool flips it to "ready" when playable. Without workers
// the conversion runs inline and a failed upload leaves no row behind.
//
// ctx carries the request's trace span (and cancellation for the synchronous
// path); the farm, store, and queue spans all become children of it.
func (s *Site) ProcessUpload(ctx context.Context, uploaderID int64, title, description string, data []byte) (int64, error) {
	psp := trace.FromContext(ctx).StartChild("video.probe")
	info, err := video.Probe(data)
	if err != nil {
		psp.SetError(err)
		psp.End()
		return 0, fmt.Errorf("web: not a playable upload: %w", err)
	}
	psp.End()
	// Check-and-reserve quota admission for the context's tenant (the
	// default tenant, unlimited, when the caller carries none): source
	// seconds against the hourly transcode window and an upper-bound
	// storage estimate, corrected to the exact size at publish. Denials
	// are typed ErrQuotaExceeded — the handler maps them to 429.
	ten, _, _ := tenant.FromContext(ctx)
	adm, err := s.admitUpload(ten, len(data), info.DurationSeconds)
	if err != nil {
		return 0, err
	}
	isp := trace.FromContext(ctx).StartChild("db.insert")
	id, err := s.db.Insert("videos", videodb.Row{
		"title": title, "description": description,
		"uploader_id":      uploaderID,
		"duration_seconds": int64(info.DurationSeconds),
		"status":           statusProcessing,
		"tenant":           adm.ten.Name(),
	})
	if err != nil {
		isp.SetError(err)
		isp.End()
		adm.release()
		return 0, err
	}
	isp.End()
	trace.FromContext(ctx).AnnotateInt("video_id", id)
	s.noteVideoTenant(id, adm.ten.Name())
	if s.queue != nil {
		if qerr := s.enqueueTranscode(ctx, transcodeJob{
			videoID: id, title: title, description: description,
			data: data, enqueued: time.Now(), adm: adm,
		}); qerr != nil {
			// Throttled or shut down: no one will ever convert the row, so
			// remove it and return the reservations.
			s.db.Delete("videos", id)
			s.noteVideoTenant(id, "")
			adm.release()
			return 0, qerr
		}
		return id, nil
	}
	if err := s.transcodeAndPublish(ctx, id, title, description, data, adm); err != nil {
		s.db.Delete("videos", id)
		s.noteVideoTenant(id, "")
		return 0, err
	}
	return id, nil
}

// ---- watch & stream (Figure 23) ----

func (s *Site) videoByRequest(r *http.Request) (videodb.Row, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("web: bad video id: %v", err)
	}
	sp := trace.FromContext(r.Context()).StartChild("db.get")
	row, err := s.db.Get("videos", id)
	if err != nil {
		sp.SetError(err)
	}
	sp.End()
	return row, err
}

func (s *Site) handleWatch(w http.ResponseWriter, r *http.Request) {
	row, err := s.videoByRequest(r)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	id := rowInt(row, "id")
	views := rowInt(row, "views")
	s.db.Update("videos", id, videodb.Row{"views": views + 1})
	row["views"] = views + 1
	v := view{Page: "watch", Title: rowString(row, "title"), Video: s.videoView(row)}
	v.Qualities = strings.Split(rowString(row, "renditions"), ",")
	if u := s.currentUser(r); u != nil {
		v.Owner = u["id"] == row["uploader_id"] || rowBool(u, "admin")
	}
	// Related videos (§IV-A "related ranking methods").
	for _, hit := range s.Index().MoreLikeThis(id, 5) {
		if rel, err := s.db.Get("videos", hit.Doc); err == nil {
			v.Related = append(v.Related, s.videoView(rel))
		}
	}
	comments, _ := s.db.Select("comments", "video_id", id)
	for _, c := range comments {
		v.Comments = append(v.Comments, commentView{
			User: s.userName(rowInt(c, "user_id"), "anonymous"),
			Text: rowString(c, "text"),
		})
	}
	s.render(w, r, v)
}

func (s *Site) handleStream(w http.ResponseWriter, r *http.Request) {
	row, err := s.videoByRequest(r)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	path := rowString(row, "path")
	if path == "" {
		// Tolerant read: rows from older binaries carry no status column.
		status, _ := row["status"].(string)
		if status == statusProcessing {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "video is still processing", http.StatusServiceUnavailable)
			return
		}
		// A live channel has no whole file — its content exists only as
		// segments. Point the client at the segmented entry point.
		if segs, _ := row["segments"].(int64); segs > 0 || status == statusLive {
			http.Error(w, fmt.Sprintf("segmented delivery only: use /playlist/%d", rowInt(row, "id")),
				http.StatusNotFound)
			return
		}
		// A failed conversion or a malformed row: nothing to stream.
		http.Error(w, "video file not available", http.StatusInternalServerError)
		return
	}
	// quality=<label> selects a rendition; the default is the target.
	if q := r.FormValue("quality"); q != "" && q != QualityLabel(s.target) {
		available := strings.Split(rowString(row, "renditions"), ",")
		found := false
		for _, label := range available {
			if label == q {
				found = true
				break
			}
		}
		if !found {
			http.Error(w, fmt.Sprintf("no %s rendition (have %s)", q, row["renditions"]),
				http.StatusNotFound)
			return
		}
		path = fmt.Sprintf("videos/%d-%s.vcf", rowInt(row, "id"), q)
	}
	// The HDFS read path is guarded by a circuit breaker: while the store
	// is down, fail fast with 503 + Retry-After instead of stacking
	// requests on a dead backend. Metadata pages keep serving from the
	// database, so the site degrades rather than collapses.
	ctx := r.Context()
	if !s.hdfsBreaker.Allow() {
		log.Printf("web: breaker open, shedding stream %s (request %s)", path, requestIDFrom(ctx))
		w.Header().Set("Retry-After", strconv.Itoa(s.hdfsBreaker.RetryAfterSeconds()))
		http.Error(w, "video storage temporarily unavailable", http.StatusServiceUnavailable)
		return
	}
	rd, err := s.store.OpenSeekerCtx(ctx, path)
	if err == nil {
		// The reader retains a block-cache reference for every slice it
		// hands to the response; Close releases them once the response is
		// written so the cache can evict again.
		defer rd.Close()
		// Open only consults NameNode metadata; dead DataNodes surface
		// on the first read. Probe one byte before committing to a 200.
		var probe [1]byte
		if _, perr := rd.ReadAt(probe[:], 0); perr != nil && perr != io.EOF {
			err = perr
		}
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// A missing file is the row's problem, not the store's:
			// it must not trip the breaker.
			s.hdfsBreaker.Success()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.hdfsBreaker.Failure()
		s.reg.Counter("stream_storage_errors").Inc()
		log.Printf("web: storage failure streaming %s (request %s): %v", path, requestIDFrom(ctx), err)
		w.Header().Set("Retry-After", strconv.Itoa(s.hdfsBreaker.RetryAfterSeconds()))
		http.Error(w, "video storage temporarily unavailable", http.StatusServiceUnavailable)
		return
	}
	s.hdfsBreaker.Success()
	s.reg.Counter("stream_requests").Inc()
	ssp := trace.FromContext(ctx).StartChild("stream.serve")
	ssp.Annotate("path", path)
	// Fallbacks off the zero-copy slice path (multi-range requests, content
	// that can't slice) go through the copying ServeContent path; the
	// counter keeps that rate visible in stats.
	onFallback := func(string) { s.reg.Counter("stream_fallback_total").Inc() }
	// Egress attribution: response-body bytes are metered to the tenant
	// that owns the video (the publisher pays for delivery).
	mw := &meteredWriter{ResponseWriter: w}
	if s.streamPacer != nil {
		// Meter egress through the replica's NIC-model token bucket.
		stream.ServeWithFallback(pacedWriter{ResponseWriter: mw, p: s.streamPacer}, r, path, rd, onFallback)
	} else {
		stream.ServeWithFallback(mw, r, path, rd, onFallback)
	}
	ssp.End()
	owner, _ := row["tenant"].(string)
	s.meterEgress(owner, mw.n)
}

// ---- comments, reports, edit, delete ----

func (s *Site) handleComment(w http.ResponseWriter, r *http.Request) {
	user := s.currentUser(r)
	if user == nil {
		http.Error(w, "log in to comment", http.StatusUnauthorized)
		return
	}
	row, err := s.videoByRequest(r)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	text := strings.TrimSpace(r.FormValue("text"))
	if text == "" {
		http.Error(w, "empty comment", http.StatusBadRequest)
		return
	}
	s.db.Insert("comments", videodb.Row{
		"video_id": rowInt(row, "id"), "user_id": rowInt(user, "id"), "text": text,
	})
	s.reg.Counter("comments").Inc()
	http.Redirect(w, r, fmt.Sprintf("/watch/%d", rowInt(row, "id")), http.StatusSeeOther)
}

func (s *Site) handleReport(w http.ResponseWriter, r *http.Request) {
	row, err := s.videoByRequest(r)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	s.db.Update("videos", rowInt(row, "id"), videodb.Row{"reports": rowInt(row, "reports") + 1})
	s.reg.Counter("reports").Inc()
	http.Redirect(w, r, fmt.Sprintf("/watch/%d", rowInt(row, "id")), http.StatusSeeOther)
}

// authorizeOwner resolves the request's principal and checks it may mutate
// the addressed video. errNeedAuth means no credentials (401); everything
// else — wrong owner, wrong tenant, read-only token — is errForbidden
// (403). See principal.owns for the tenant-scoping rules.
func (s *Site) authorizeOwner(r *http.Request) (videodb.Row, error) {
	p := s.principal(r)
	if p == nil {
		return nil, errNeedAuth
	}
	row, err := s.videoByRequest(r)
	if err != nil {
		return nil, err
	}
	if !p.role.CanWrite() || !p.owns(row) {
		return nil, errForbidden
	}
	return row, nil
}

// writeAuthzError maps authorizeOwner failures: missing credentials 401,
// everything else (wrong owner/tenant/role, missing row) 403 as before.
func writeAuthzError(w http.ResponseWriter, err error) {
	if errors.Is(err, errNeedAuth) {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	http.Error(w, err.Error(), http.StatusForbidden)
}

func (s *Site) handleDelete(w http.ResponseWriter, r *http.Request) {
	row, err := s.authorizeOwner(r)
	if err != nil {
		writeAuthzError(w, err)
		return
	}
	id := rowInt(row, "id")
	// Remove every stored object: the target file, each rendition, and all
	// delivery segments, so the tenant's byte reservation can be returned
	// in full.
	if path := rowString(row, "path"); path != "" {
		s.store.Remove(path)
	}
	labels := strings.Split(rowString(row, "renditions"), ",")
	for _, label := range labels {
		if label == "" || label == QualityLabel(s.target) {
			continue
		}
		s.store.Remove(fmt.Sprintf("videos/%d-%s.vcf", id, label))
	}
	if segs, _ := row["segments"].(int64); segs > 0 {
		for _, label := range labels {
			if label == "" {
				continue
			}
			for k := int64(0); k < segs; k++ {
				s.store.Remove(segmentPath(id, label, int(k)))
			}
		}
	}
	// Return the stored-byte reservation to the owning tenant and meter
	// the deletion; pre-tenant rows carry neither column and release zero.
	if stored, _ := row["stored_bytes"].(int64); stored > 0 {
		owner, _ := row["tenant"].(string)
		if ten := s.tenants.Get(owner); ten != nil {
			ten.ReleaseBytes(stored)
		}
		s.tenants.Meter(owner, tenant.KindBytesDeleted, float64(stored))
	}
	s.db.Delete("videos", id)
	s.noteVideoTenant(id, "")
	s.Index().Remove(id)
	comments, _ := s.db.Select("comments", "video_id", id)
	for _, c := range comments {
		s.db.Delete("comments", rowInt(c, "id"))
	}
	s.invalidateRecent()
	s.reg.Counter("videos_deleted").Inc()
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Site) handleEdit(w http.ResponseWriter, r *http.Request) {
	row, err := s.authorizeOwner(r)
	if err != nil {
		writeAuthzError(w, err)
		return
	}
	id := rowInt(row, "id")
	title := strings.TrimSpace(r.FormValue("title"))
	if title == "" {
		http.Error(w, "title required", http.StatusBadRequest)
		return
	}
	desc := r.FormValue("description")
	s.db.Update("videos", id, videodb.Row{"title": title, "description": desc})
	s.Index().Add(search.Document{ID: id, Title: title, Body: desc})
	s.invalidateRecent()
	http.Redirect(w, r, fmt.Sprintf("/watch/%d", id), http.StatusSeeOther)
}

// ---- my videos & admin ----

func (s *Site) handleMy(w http.ResponseWriter, r *http.Request) {
	user := s.currentUser(r)
	if user == nil {
		http.Redirect(w, r, "/login", http.StatusSeeOther)
		return
	}
	rows, _ := s.db.Select("videos", "uploader_id", rowInt(user, "id"))
	v := view{Page: "my", Title: "My videos"}
	for _, row := range rows {
		v.Hits = append(v.Hits, s.videoView(row))
	}
	s.render(w, r, v)
}

func (s *Site) handleAdmin(w http.ResponseWriter, r *http.Request) {
	user := s.currentUser(r)
	if user == nil || !rowBool(user, "admin") {
		http.Error(w, "administrators only", http.StatusForbidden)
		return
	}
	v := view{Page: "admin", Title: "Admin"}
	users, _ := s.db.Scan("users", func(videodb.Row) bool { return true })
	for _, u := range users {
		v.Users = append(v.Users, userView{Name: rowString(u, "username"), Blocked: rowBool(u, "blocked")})
	}
	reported, _ := s.db.Scan("videos", func(row videodb.Row) bool {
		reports, _ := row["reports"].(int64)
		return reports > 0
	})
	for _, row := range reported {
		v.Hits = append(v.Hits, s.videoView(row))
	}
	s.render(w, r, v)
}

func (s *Site) handleBlock(w http.ResponseWriter, r *http.Request) {
	user := s.currentUser(r)
	if user == nil || !rowBool(user, "admin") {
		http.Error(w, "administrators only", http.StatusForbidden)
		return
	}
	target, err := s.db.SelectOne("users", "username", r.FormValue("username"))
	if err != nil {
		target, err = s.db.SelectOne("users", "username", r.FormValue("user"))
	}
	if err != nil {
		http.NotFound(w, r)
		return
	}
	targetID := rowInt(target, "id")
	blocked := r.FormValue("blocked") != "false"
	s.db.Update("users", targetID, videodb.Row{"blocked": blocked})
	// Moderation must be visible immediately: drop the target's cached
	// username and the recent list it may appear in.
	s.invalidateUser(targetID)
	s.invalidateRecent()
	if blocked {
		// Kill the blocked user's sessions fleet-wide.
		s.state.mu.Lock()
		for tok, uid := range s.state.sessions {
			if uid == targetID {
				delete(s.state.sessions, tok)
			}
		}
		s.state.mu.Unlock()
	}
	http.Redirect(w, r, "/admin", http.StatusSeeOther)
}
