package web

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strings"
	"sync"
	"testing"

	"videocloud/internal/stream"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// TestMalformedRowDoesNotPanic plants a schema-drifted videos row (every
// column the wrong type) and drives the handlers that render it. The
// net/http server surfaces a handler panic as a dropped connection, so
// receiving any well-formed response proves the handlers stayed up.
func TestMalformedRowDoesNotPanic(t *testing.T) {
	site, _ := newSite(t)
	id, err := site.DB().RawPut("videos", videodb.Row{
		"title":            42,
		"description":      nil,
		"uploader_id":      "bogus",
		"path":             3.14,
		"duration_seconds": "ten",
		"views":            false,
		"reports":          "many",
		"renditions":       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := newBrowser(t, site)

	// Home page: the malformed row is in the recent list.
	resp, body := b.get("/")
	if resp.StatusCode != 200 {
		t.Fatalf("home status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "(untitled)") {
		t.Fatal("malformed row not rendered as placeholder")
	}

	// Watch page renders placeholders instead of panicking.
	resp, _ = b.get(fmt.Sprintf("/watch/%d", id))
	if resp.StatusCode != 200 {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}

	// Streaming a row without a usable path is a clean 500, not a panic.
	resp, _ = b.get(fmt.Sprintf("/stream/%d", id))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("stream status = %d, want 500", resp.StatusCode)
	}

	// The scan-engine search tolerates the drifted row.
	resp, _ = b.get("/search?q=anything&engine=scan")
	if resp.StatusCode != 200 {
		t.Fatalf("scan search status = %d", resp.StatusCode)
	}
}

// TestConcurrentTraffic drives simultaneous upload + search + stream +
// suggest sessions; run with -race this gates the site's shared state
// (sessions, caches, index swaps, metrics).
func TestConcurrentTraffic(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("carol", "pw")

	seedID, err := site.ProcessUpload(context.Background(), 1, "seed dance video", "concurrency fixture", genClip(t, 10, 3))
	if err != nil {
		t.Fatal(err)
	}

	const loops = 6
	// Pre-render the upload payloads: test helpers must not Fatal from
	// inside worker goroutines.
	clips := make([][]byte, loops)
	for i := range clips {
		clips[i] = genClip(t, 5, uint64(100+i))
	}
	errc := make(chan error, 4*loops)
	var wg sync.WaitGroup
	run := func(fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				if err := fn(i); err != nil {
					errc <- err
				}
			}
		}()
	}
	get := func(c *http.Client, path string) error {
		resp, err := c.Get(b.srv.URL + path)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("status %d for %s", resp.StatusCode, path)
		}
		return nil
	}

	run(func(i int) error { // uploader (carol's logged-in client)
		data := clips[i]
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		mw.WriteField("title", fmt.Sprintf("concurrent upload %d", i))
		mw.WriteField("description", "raced")
		fw, _ := mw.CreateFormFile("video", "clip.avi")
		fw.Write(data)
		mw.Close()
		req, _ := http.NewRequest("POST", b.srv.URL+"/upload", &buf)
		req.Header.Set("Content-Type", mw.FormDataContentType())
		resp, err := b.c.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("upload status %d", resp.StatusCode)
		}
		return nil
	})
	run(func(i int) error { // searcher (also exercises the cached home page)
		if err := get(http.DefaultClient, "/"); err != nil {
			return err
		}
		return get(http.DefaultClient, "/search?q=dance")
	})
	run(func(i int) error { // streamer with a seek
		p := &stream.Player{ChunkBytes: 16 << 10}
		_, err := p.Play(fmt.Sprintf("%s/stream/%d", b.srv.URL, seedID),
			[]float64{float64(i%5) / 10}, nil)
		return err
	})
	run(func(i int) error { // suggester
		return get(http.DefaultClient, "/suggest?q=da")
	})

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCacheInvalidation checks the recent-list cache stays correct across
// upload, edit, and delete — the explicit invalidation rules.
func TestCacheInvalidation(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("dave", "pw")

	if _, body := b.get("/"); strings.Contains(body, "Recent uploads") {
		t.Fatal("empty site already lists recent uploads")
	}
	watch := b.upload("Cache probe", "v1", 8, 11)
	if _, body := b.get("/"); !strings.Contains(body, "Cache probe") {
		t.Fatal("upload did not invalidate the recent list")
	}
	// Repeated home hits are served from the cache.
	before := site.Metrics().Counter("cache_recent_hits").Value()
	b.get("/")
	b.get("/")
	if got := site.Metrics().Counter("cache_recent_hits").Value(); got < before+2 {
		t.Fatalf("home not served from cache (%d -> %d hits)", before, got)
	}

	if resp, _ := b.post(watch+"/edit", map[string][]string{
		"title": {"Renamed probe"}, "description": {"v2"},
	}); resp.StatusCode != 200 {
		t.Fatalf("edit status %d", resp.StatusCode)
	}
	if _, body := b.get("/"); !strings.Contains(body, "Renamed probe") {
		t.Fatal("edit did not invalidate the recent list")
	}

	if resp, _ := b.post(watch+"/delete", nil); resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if _, body := b.get("/"); strings.Contains(body, "Renamed probe") {
		t.Fatal("delete did not invalidate the recent list")
	}
}

// genClip renders a small test clip.
func genClip(t testing.TB, seconds int, seed uint64) []byte {
	t.Helper()
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 64_000}
	data, err := video.Generate(src, seconds, seed)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// seedCatalogRows inserts n well-formed video rows directly (no media), so
// home-page benchmarks can run against a large catalog cheaply.
func seedCatalogRows(t testing.TB, site *Site, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := site.DB().Insert("videos", videodb.Row{
			"title":            fmt.Sprintf("catalog video %d", i),
			"description":      "benchmark seed",
			"uploader_id":      int64(1),
			"duration_seconds": int64(60),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestHomeCacheSpeedup is the acceptance benchmark: at 1k videos the cached
// recent list must beat the per-request table scan by at least 5x.
func TestHomeCacheSpeedup(t *testing.T) {
	site, _ := newSite(t)
	seedCatalogRows(t, site, 1000)

	scan := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			site.scanRecent()
		}
	})
	site.recentVideos() // warm
	cached := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			site.recentVideos()
		}
	})
	speedup := float64(scan.NsPerOp()) / float64(cached.NsPerOp())
	t.Logf("scan %v/op, cached %v/op, speedup %.0fx", scan.NsPerOp(), cached.NsPerOp(), speedup)
	if speedup < 5 {
		t.Fatalf("cached home only %.1fx faster than the table scan", speedup)
	}
}

// BenchmarkHomeScan measures the pre-cache home page path (full videodb
// scan + view construction) at 1k videos.
func BenchmarkHomeScan(b *testing.B) {
	site, _ := newSite(b)
	seedCatalogRows(b, site, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site.scanRecent()
	}
}

// BenchmarkHomeCached measures the read-through cache hit path.
func BenchmarkHomeCached(b *testing.B) {
	site, _ := newSite(b)
	seedCatalogRows(b, site, 1000)
	site.recentVideos()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site.recentVideos()
	}
}
