package web

import (
	"context"
	"fmt"
	"strings"

	"videocloud/internal/search"
	"videocloud/internal/trace"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// Live ingest: a channel is a catalog row in status "live" whose segment
// index grows as the publisher pushes source chunks. Each push is converted
// to every rendition by the farm (the same one-pass conversion uploads get),
// renumbered onto the channel's global GOP timeline, and stored as the next
// segment object — exactly the layout VOD segmentation produces, so the
// playlist/segment handlers and the edge cache serve live and VOD
// identically. Viewers at the live edge re-poll the media playlist (no end
// marker while live); the edge cache's TTL bounds how stale their view is.
// Ending the channel flips it to "ended": the playlist gains its end marker
// and the accumulated segments remain watchable as VOD.

// CreateLiveChannel registers a live channel owned by uploaderID and
// returns its video id. The channel starts with an empty segment index.
func (s *Site) CreateLiveChannel(ctx context.Context, uploaderID int64, title, description string) (int64, error) {
	if strings.TrimSpace(title) == "" {
		return 0, fmt.Errorf("web: live channel needs a title")
	}
	labels := []string{QualityLabel(s.target)}
	for _, r := range s.renditions {
		labels = append(labels, QualityLabel(r))
	}
	id, err := s.db.Insert("videos", videodb.Row{
		"title": title, "description": description,
		"uploader_id": uploaderID,
		"status":      statusLive,
		"renditions":  strings.Join(labels, ","),
		"seg_seconds": int64(s.segSeconds),
	})
	if err != nil {
		return 0, err
	}
	s.Index().Add(search.Document{ID: id, Title: title, Body: description})
	s.invalidateRecent()
	s.reg.Counter("live_channels").Inc()
	return id, nil
}

// PushLiveSegment converts one source chunk and publishes it as the
// channel's next segment, returning its index. Chunks must be GOP-aligned
// and at most one segment long; a short chunk is allowed only as the final
// push before EndLiveChannel (it becomes the channel's short last segment,
// like VOD's remainder).
func (s *Site) PushLiveSegment(ctx context.Context, id int64, chunk []byte) (int, error) {
	row, err := s.db.Get("videos", id)
	if err != nil {
		return 0, err
	}
	if status, _ := row["status"].(string); status != statusLive {
		return 0, fmt.Errorf("web: video %d is not a live channel (status %q)", id, status)
	}
	duration := rowInt(row, "duration_seconds")
	segs := rowInt(row, "segments")
	if segs > 0 && duration != segs*int64(s.segSeconds) {
		return 0, fmt.Errorf("web: channel %d already pushed a short segment; only EndLiveChannel may follow", id)
	}
	info, err := video.Probe(chunk)
	if err != nil {
		return 0, fmt.Errorf("web: unplayable live chunk: %w", err)
	}
	if info.DurationSeconds <= 0 || info.DurationSeconds > s.segSeconds ||
		info.DurationSeconds%s.target.GOPSeconds != 0 {
		return 0, fmt.Errorf("web: live chunk is %ds; want a GOP-aligned chunk of at most %ds",
			info.DurationSeconds, s.segSeconds)
	}
	specs := append([]video.Spec{s.target}, s.renditions...)
	results, err := s.convertPooled(ctx, chunk, specs)
	if err != nil {
		return 0, fmt.Errorf("web: live conversion failed: %w", err)
	}
	// The channel's global GOP clock: everything published so far, in GOPs.
	firstGOP := int(duration) / s.target.GOPSeconds
	k := int(segs)
	sp := trace.FromContext(ctx).StartChild("store.live_segment")
	for i, spec := range specs {
		out, rerr := video.Rebase(results[i].Output, firstGOP)
		if rerr != nil {
			sp.SetError(rerr)
			sp.End()
			return 0, fmt.Errorf("web: renumbering live segment: %w", rerr)
		}
		if werr := s.store.WriteFileCtx(ctx, segmentPath(id, QualityLabel(spec), k), out); werr != nil {
			sp.SetError(werr)
			sp.End()
			return 0, fmt.Errorf("web: storing live segment: %w", werr)
		}
	}
	sp.End()
	if uerr := s.db.Update("videos", id, videodb.Row{
		"segments":         segs + 1,
		"duration_seconds": duration + int64(info.DurationSeconds),
	}); uerr != nil {
		return 0, uerr
	}
	s.reg.Counter("live_segments_published").Inc()
	return k, nil
}

// EndLiveChannel closes the channel: the media playlists gain their end
// marker (within the live-edge TTL) and the content stays watchable as
// segmented VOD.
func (s *Site) EndLiveChannel(ctx context.Context, id int64) error {
	row, err := s.db.Get("videos", id)
	if err != nil {
		return err
	}
	if status, _ := row["status"].(string); status != statusLive {
		return fmt.Errorf("web: video %d is not a live channel (status %q)", id, status)
	}
	if err := s.db.Update("videos", id, videodb.Row{"status": statusEnded}); err != nil {
		return err
	}
	s.reg.Counter("live_channels_ended").Inc()
	return nil
}
