package web

import (
	"fmt"
	"log"
	"net/http"
	"time"

	"videocloud/internal/metrics"
)

// defaultMaxInFlight is the admission limit when Config.MaxInFlight is zero:
// requests beyond it are shed with 503 instead of queueing unboundedly — the
// serving tier degrades predictably when the paper's "heavy traffic" arrives
// faster than the hardware can drain it.
const defaultMaxInFlight = 256

// routeMetrics holds the pre-resolved instruments for one route so the hot
// path never takes the registry's name-lookup lock.
type routeMetrics struct {
	route    string
	requests *metrics.Counter
	latency  *metrics.Histogram
	inflight *metrics.Gauge
	panics   *metrics.Counter
	status   [6]*metrics.Counter // status[c] counts HTTP c00-c99 responses
}

// RouteStats is a point-in-time summary of one route's traffic, surfaced
// through core.Status and the experiment tables.
type RouteStats struct {
	Route    string
	Requests int64
	InFlight int64
	Panics   int64
	// StatusNxx count responses by status class.
	Status2xx, Status3xx, Status4xx, Status5xx int64
	// Latency summarises per-request wall time in seconds.
	Latency metrics.Snapshot
}

// RouteStats returns per-route traffic summaries in registration order.
func (s *Site) RouteStats() []RouteStats {
	out := make([]RouteStats, 0, len(s.routeMetrics))
	for _, rm := range s.routeMetrics {
		out = append(out, RouteStats{
			Route:     rm.route,
			Requests:  rm.requests.Value(),
			InFlight:  rm.inflight.Value(),
			Panics:    rm.panics.Value(),
			Status2xx: rm.status[2].Value(),
			Status3xx: rm.status[3].Value(),
			Status4xx: rm.status[4].Value(),
			Status5xx: rm.status[5].Value(),
			Latency:   rm.latency.Snapshot(),
		})
	}
	return out
}

// metricsFor returns the route's instruments, creating them on first use.
// GET/POST pairs of the same page share one set. Only called from routes()
// and tests, before traffic arrives, so no lock is needed.
func (s *Site) metricsFor(route string) *routeMetrics {
	for _, rm := range s.routeMetrics {
		if rm.route == route {
			return rm
		}
	}
	rm := &routeMetrics{
		route:    route,
		requests: s.reg.Counter("http_" + route + "_requests"),
		latency:  s.reg.Histogram("http_" + route + "_latency_seconds"),
		inflight: s.reg.Gauge("http_" + route + "_inflight"),
		panics:   s.reg.Counter("http_" + route + "_panics"),
	}
	for c := 2; c <= 5; c++ {
		rm.status[c] = s.reg.Counter(fmt.Sprintf("http_%s_status_%dxx", route, c))
	}
	s.routeMetrics = append(s.routeMetrics, rm)
	return rm
}

// statusRecorder captures the response status for the status-class counters
// while passing writes straight through (including Flush for streaming).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the serving-path middleware: admission
// control (shed with 503 over the in-flight limit), per-route request/
// status/latency/in-flight instruments, and panic recovery so one malformed
// request can never take down the handler goroutine silently.
func (s *Site) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.metricsFor(route)
	shed := s.reg.Counter("http_shed")
	globalInflight := s.reg.Gauge("http_inflight")
	return func(w http.ResponseWriter, r *http.Request) {
		n := s.inflightNow.Add(1)
		if n > s.maxInFlight {
			s.inflightNow.Add(-1)
			shed.Inc()
			http.Error(w, "server busy — try again shortly", http.StatusServiceUnavailable)
			return
		}
		globalInflight.Set(n)
		rm.inflight.Add(1)
		rm.requests.Inc()
		sw := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				rm.panics.Inc()
				s.reg.Counter("http_panics").Inc()
				log.Printf("web: panic in %s handler: %v", route, p)
				if sw.status == 0 {
					http.Error(sw.ResponseWriter, "internal error", http.StatusInternalServerError)
					sw.status = http.StatusInternalServerError
				}
			}
			rm.latency.ObserveDuration(time.Since(start))
			class := sw.status / 100
			if sw.status == 0 {
				class = 2 // nothing written: net/http sends 200 on close
			}
			if class >= 2 && class <= 5 {
				rm.status[class].Inc()
			}
			rm.inflight.Add(-1)
			globalInflight.Set(s.inflightNow.Add(-1))
		}()
		h(sw, r)
	}
}
