package web

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/tenant"
)

// Request IDs are a salted counter run through a 64-bit mixer: unique per
// process, cheap (no entropy read per request), and unguessable enough for
// log correlation. The salt is drawn once at startup.
var (
	ridSeq  atomic.Uint64
	ridSalt = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("web: entropy unavailable: %v", err))
		}
		return binary.BigEndian.Uint64(b[:])
	}()
)

// nextRequestID returns a 16-hex-char per-request ID.
func nextRequestID() string {
	x := ridSalt ^ (ridSeq.Add(1) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return fmt.Sprintf("%016x", x)
}

// ridKey keys the request ID in a request context.
type ridKey struct{}

func withRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, ridKey{}, rid)
}

// requestIDFrom returns the request's ID ("-" when the middleware did not
// run, e.g. direct handler tests).
func requestIDFrom(ctx context.Context) string {
	if rid, ok := ctx.Value(ridKey{}).(string); ok {
		return rid
	}
	return "-"
}

// defaultMaxInFlight is the admission limit when Config.MaxInFlight is zero:
// requests beyond it are shed with 503 instead of queueing unboundedly — the
// serving tier degrades predictably when the paper's "heavy traffic" arrives
// faster than the hardware can drain it.
const defaultMaxInFlight = 256

// routeMetrics holds the pre-resolved instruments for one route so the hot
// path never takes the registry's name-lookup lock.
type routeMetrics struct {
	route    string
	requests *metrics.Counter
	latency  *metrics.Histogram
	inflight *metrics.Gauge
	panics   *metrics.Counter
	status   [6]*metrics.Counter // status[c] counts HTTP c00-c99 responses
}

// RouteStats is a point-in-time summary of one route's traffic, surfaced
// through core.Status and the experiment tables.
type RouteStats struct {
	Route    string
	Requests int64
	InFlight int64
	Panics   int64
	// StatusNxx count responses by status class.
	Status2xx, Status3xx, Status4xx, Status5xx int64
	// Latency summarises per-request wall time in seconds.
	Latency metrics.Snapshot
}

// RouteStats returns per-route traffic summaries in registration order.
func (s *Site) RouteStats() []RouteStats {
	out := make([]RouteStats, 0, len(s.routeMetrics))
	for _, rm := range s.routeMetrics {
		out = append(out, RouteStats{
			Route:     rm.route,
			Requests:  rm.requests.Value(),
			InFlight:  rm.inflight.Value(),
			Panics:    rm.panics.Value(),
			Status2xx: rm.status[2].Value(),
			Status3xx: rm.status[3].Value(),
			Status4xx: rm.status[4].Value(),
			Status5xx: rm.status[5].Value(),
			Latency:   rm.latency.Snapshot(),
		})
	}
	return out
}

// metricsFor returns the route's instruments, creating them on first use.
// GET/POST pairs of the same page share one set. Only called from routes()
// and tests, before traffic arrives, so no lock is needed.
func (s *Site) metricsFor(route string) *routeMetrics {
	for _, rm := range s.routeMetrics {
		if rm.route == route {
			return rm
		}
	}
	rm := &routeMetrics{
		route:    route,
		requests: s.reg.Counter("http_" + route + "_requests"),
		latency:  s.reg.Histogram("http_" + route + "_latency_seconds"),
		inflight: s.reg.Gauge("http_" + route + "_inflight"),
		panics:   s.reg.Counter("http_" + route + "_panics"),
	}
	for c := 2; c <= 5; c++ {
		rm.status[c] = s.reg.Counter(fmt.Sprintf("http_%s_status_%dxx", route, c))
	}
	s.routeMetrics = append(s.routeMetrics, rm)
	return rm
}

// statusRecorder captures the response status for the status-class counters
// while passing writes straight through (including Flush for streaming).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the serving-path middleware: admission
// control (shed with 503 over the in-flight limit), per-request IDs echoed
// as X-Request-ID, a root trace span per sampled request, per-route request/
// status/latency/in-flight instruments, and panic recovery so one malformed
// request can never take down the handler goroutine silently.
func (s *Site) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := s.metricsFor(route)
	shed := s.reg.Counter("http_shed")
	globalInflight := s.reg.Gauge("http_inflight")
	return func(w http.ResponseWriter, r *http.Request) {
		rid := nextRequestID()
		w.Header().Set("X-Request-ID", rid)
		n := s.inflightNow.Add(1)
		if n > s.maxInFlight {
			s.inflightNow.Add(-1)
			shed.Inc()
			http.Error(w, "server busy — try again shortly", http.StatusServiceUnavailable)
			return
		}
		globalInflight.Set(n)
		rm.inflight.Add(1)
		rm.requests.Inc()
		ctx, sp := s.tracer.StartSpan(withRequestID(r.Context(), rid), "web."+route)
		if sp != nil {
			sp.Annotate("request_id", rid)
			sp.Annotate("method", r.Method)
			sp.Annotate("path", r.URL.Path)
		}
		r = r.WithContext(ctx)
		sw := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				rm.panics.Inc()
				s.reg.Counter("http_panics").Inc()
				log.Printf("web: panic in %s handler (request %s): %v", route, rid, p)
				sp.SetError(fmt.Errorf("panic: %v", p))
				if sw.status == 0 {
					http.Error(sw.ResponseWriter, "internal error", http.StatusInternalServerError)
					sw.status = http.StatusInternalServerError
				}
			}
			rm.latency.ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
			class := sw.status / 100
			if sw.status == 0 {
				class = 2 // nothing written: net/http sends 200 on close
			}
			if class >= 2 && class <= 5 {
				rm.status[class].Inc()
			}
			if sp != nil {
				sp.Annotate("status", strconv.Itoa(sw.status))
				if class == 5 {
					sp.SetError(fmt.Errorf("http %d", sw.status))
				}
			}
			sp.End()
			rm.inflight.Add(-1)
			globalInflight.Set(s.inflightNow.Add(-1))
		}()
		// API-token auth: a Bearer header resolves to a tenant identity on
		// the request context (401 on a bad token); the root span is
		// annotated so traces attribute per tenant.
		var ok bool
		if r, ok = s.resolveBearer(sw, r); !ok {
			return
		}
		if ten, _, found := tenant.FromContext(r.Context()); found && sp != nil {
			sp.Annotate("tenant", ten.Name())
		}
		h(sw, r)
	}
}
