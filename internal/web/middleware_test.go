package web

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRouteMetricsRecorded drives the main routes and checks that the
// serving-path middleware recorded per-route request counts, status
// classes, latency observations, and an (idle) in-flight gauge.
func TestRouteMetricsRecorded(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("alice", "pw")
	watch := b.upload("Metrics clip", "instrumented upload", 10, 7)
	b.get("/")
	b.get("/search?q=metrics")
	b.get(strings.Replace(watch, "/watch/", "/stream/", 1))

	stats := map[string]RouteStats{}
	for _, rs := range site.RouteStats() {
		stats[rs.Route] = rs
	}
	for _, route := range []string{"home", "search", "upload", "stream"} {
		rs, ok := stats[route]
		if !ok {
			t.Fatalf("no stats for route %q", route)
		}
		if rs.Requests == 0 {
			t.Fatalf("route %q recorded no requests", route)
		}
		// Upload answers with a 303 redirect to the watch page; the rest
		// render directly.
		if rs.Status2xx+rs.Status3xx == 0 {
			t.Fatalf("route %q recorded no success statuses (stats %+v)", route, rs)
		}
		if rs.Latency.Count != rs.Requests {
			t.Fatalf("route %q: %d latency samples for %d requests", route, rs.Latency.Count, rs.Requests)
		}
		if rs.InFlight != 0 {
			t.Fatalf("route %q in-flight gauge stuck at %d", route, rs.InFlight)
		}
	}
	// The same numbers are visible through the plain registry namespace.
	if n := site.Metrics().Counter("http_home_requests").Value(); n != stats["home"].Requests {
		t.Fatalf("registry http_home_requests = %d, want %d", n, stats["home"].Requests)
	}
	if site.Metrics().Histogram("http_stream_latency_seconds").Count() == 0 {
		t.Fatal("registry stream latency histogram empty")
	}
}

// TestAdmissionLimiterSheds fills the in-flight budget and checks the
// middleware sheds with 503 instead of queueing, then recovers.
func TestAdmissionLimiterSheds(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)

	// Occupy every admission slot as if that many requests were in flight.
	site.inflightNow.Add(site.maxInFlight)
	resp, _ := b.get("/")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit status = %d, want 503", resp.StatusCode)
	}
	if site.Metrics().Counter("http_shed").Value() == 0 {
		t.Fatal("shed counter not incremented")
	}
	// Shed requests never reach the route's handler metrics.
	if n := site.Metrics().Counter("http_home_requests").Value(); n != 0 {
		t.Fatalf("shed request still counted as handled (%d)", n)
	}

	site.inflightNow.Add(-site.maxInFlight)
	if resp, _ := b.get("/"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status = %d", resp.StatusCode)
	}
}

// TestPanicRecovery wraps a deliberately panicking handler with the
// middleware and checks the client sees a 500, not a dropped connection.
func TestPanicRecovery(t *testing.T) {
	site, _ := newSite(t)
	h := site.instrument("boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("panic leaked to the connection: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if site.Metrics().Counter("http_boom_panics").Value() != 1 {
		t.Fatal("panic counter not incremented")
	}
	// Latency and status class are still recorded for the panicked request.
	for _, rs := range site.RouteStats() {
		if rs.Route == "boom" {
			if rs.Status5xx != 1 || rs.Latency.Count != 1 || rs.InFlight != 0 {
				t.Fatalf("panicked request misaccounted: %+v", rs)
			}
			return
		}
	}
	t.Fatal("no route stats for boom")
}
