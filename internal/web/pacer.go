package web

import (
	"net/http"
	"time"
)

// pacer is a token bucket capping one replica's aggregate streaming egress —
// the per-frontend NIC model. The paper's web server is a VM on one GbE
// port; a fleet scales serving capacity by adding frontends, and E14
// measures exactly that, so each replica's stream bytes drain through its
// own bucket. The bucket allows a one-second burst so short Range windows
// are not over-throttled.
type pacer struct {
	ch chan struct{} // serialises refill accounting

	rate   float64 // bytes per second; <= 0 disables
	tokens float64
	last   time.Time
}

// newPacer returns a pacer for rate bytes/sec, or nil when rate <= 0
// (unpaced).
func newPacer(rate int64) *pacer {
	if rate <= 0 {
		return nil
	}
	p := &pacer{
		ch:     make(chan struct{}, 1),
		rate:   float64(rate),
		tokens: float64(rate), // full one-second burst at start
		last:   time.Now(),
	}
	p.ch <- struct{}{}
	return p
}

// acquire blocks until n bytes of egress budget are available. Nil receiver
// is a no-op (unpaced replica).
func (p *pacer) acquire(n int) {
	if p == nil || n <= 0 {
		return
	}
	need := float64(n)
	for {
		<-p.ch // acquire accounting slot
		now := time.Now()
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		p.last = now
		if p.tokens > p.rate {
			p.tokens = p.rate // burst cap: one second of egress
		}
		if p.tokens >= need {
			p.tokens -= need
			p.ch <- struct{}{}
			return
		}
		wait := time.Duration((need - p.tokens) / p.rate * float64(time.Second))
		p.ch <- struct{}{}
		time.Sleep(wait)
	}
}

// pacedWriter throttles response writes through the replica's pacer.
// net.Buffers.WriteTo falls back to sequential Write calls on a wrapped
// ResponseWriter, so the zero-copy slice path stays intact — each cached
// block slice is just metered before it leaves.
type pacedWriter struct {
	http.ResponseWriter
	p *pacer
}

func (w pacedWriter) Write(b []byte) (int, error) {
	w.p.acquire(len(b))
	return w.ResponseWriter.Write(b)
}

func (w pacedWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
