package web

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"videocloud/internal/search"
	"videocloud/internal/tenant"
	"videocloud/internal/trace"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// Video status lifecycle. Uploads are inserted as "processing"; the farm
// conversion flips them to "ready" (streamable) or "failed". Rows written by
// older binaries carry no status and are treated as ready.
// Live channels (live.go) add two states: "live" while the channel is
// publishing segments, "ended" once it has finished (still watchable as
// segmented VOD).
const (
	statusProcessing = "processing"
	statusReady      = "ready"
	statusFailed     = "failed"
	statusLive       = "live"
	statusEnded      = "ended"
)

// defaultTranscodeQueueCap bounds the async intake when the config leaves
// TranscodeQueueCap zero. A full queue blocks uploaders (backpressure)
// instead of dropping jobs or growing without bound.
const defaultTranscodeQueueCap = 64

// transcodeJob is one upload waiting for farm conversion. ctx is the queue's
// base context re-parented with the uploading request's trace span, so the
// worker's spans stay causally linked to the request while the job's
// cancellation follows the queue lifetime, not the (long-gone) HTTP request.
type transcodeJob struct {
	ctx         context.Context
	videoID     int64
	title       string
	description string
	data        []byte
	enqueued    time.Time
	// adm carries the upload's quota reservations (tenant identity, byte
	// estimate, source seconds) across the async boundary — the context's
	// tenant value does not survive trace.Reparent.
	adm *admission
}

// transcodeQueue is the bounded worker pool that drains async uploads.
// Intake is a weighted start-time-fair queue: each tenant is a flow, so a
// bulk tenant's backlog interleaves with — instead of running ahead of —
// everyone else's, and a flow over its fair share is throttled with a
// typed error (429) rather than crowding the queue. The default tenant
// keeps the legacy contract: blocking backpressure, never throttled.
type transcodeQueue struct {
	fq       *tenant.FairQueue[transcodeJob]
	nworkers int
	baseCtx  context.Context // cancelled by Close after the drain
	cancel   context.CancelFunc
	mu       sync.Mutex // guards closed and admission into pending
	closed   bool       // set by Close; enqueueTranscode fails fast after
	pending  sync.WaitGroup // jobs accepted but not yet published/failed
	workers  sync.WaitGroup // worker goroutines
	stop     sync.Once

	enqueued  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// startTranscoders launches the async conversion pool. workers == 0 keeps
// the site in synchronous mode (ProcessUpload converts inline before
// returning), the behaviour every pre-queue caller relies on.
func (s *Site) startTranscoders(workers, queueCap int) {
	if workers == 0 {
		return
	}
	if queueCap <= 0 {
		queueCap = defaultTranscodeQueueCap
	}
	q := &transcodeQueue{fq: tenant.NewFairQueue[transcodeJob](queueCap), nworkers: workers}
	q.baseCtx, q.cancel = context.WithCancel(context.Background())
	s.queue = q
	for i := 0; i < workers; i++ {
		q.workers.Add(1)
		go func() {
			defer q.workers.Done()
			for {
				job, ok := q.fq.Pop()
				if !ok {
					return
				}
				s.runTranscodeJob(job)
			}
		}()
	}
}

// errSiteClosed rejects uploads that race Site.Close.
var errSiteClosed = errors.New("web: site is shut down, not accepting uploads")

// enqueueTranscode hands an upload to the pool. When the queue is full the
// send blocks — upload handlers slow down rather than the queue growing
// unboundedly — and the stall is counted in transcode_backpressure. After
// Close it returns errSiteClosed instead of sending: admission into the
// pending group happens under the queue mutex, so Close can wait out every
// accepted sender before it closes the channel.
func (s *Site) enqueueTranscode(ctx context.Context, job transcodeJob) error {
	q := s.queue
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return errSiteClosed
	}
	q.pending.Add(1)
	q.mu.Unlock()
	// The job runs on the queue's lifetime but keeps the request's span
	// linkage: the worker's spans land in the uploading request's trace. The
	// Hold keeps the trace from flushing between the HTTP response and the
	// worker dequeuing the job; runTranscodeJob releases it.
	job.ctx = trace.Reparent(q.baseCtx, ctx)
	if job.adm == nil {
		job.adm = &admission{}
	}
	// Reparent drops context values, so the tenant identity is re-attached
	// explicitly: the worker's HDFS writes must still attribute to the
	// uploading tenant.
	if job.adm.ten != nil {
		job.ctx = tenant.WithContext(job.ctx, job.adm.ten, tenant.RoleWriter)
	}
	trace.FromContext(job.ctx).Hold()
	// Weighted tenants are distinct fair-queue flows with the job's source
	// seconds as its cost; the default tenant is the legacy flow (weight 0:
	// blocking backpressure, never throttled).
	flow, weight := "", 0
	if ten := job.adm.ten; ten != nil && !ten.IsDefault() {
		flow, weight = ten.Name(), ten.Weight()
	}
	if q.fq.Full() {
		s.reg.Counter("transcode_backpressure").Inc()
		trace.FromContext(ctx).Annotate("backpressure", "intake queue full, send blocked")
	}
	if perr := q.fq.Push(flow, weight, job.adm.srcSecs, job); perr != nil {
		trace.FromContext(job.ctx).Release()
		q.pending.Done()
		if errors.Is(perr, tenant.ErrThrottled) {
			job.adm.ten.CountThrottle()
			s.reg.Counter("transcode_throttled").Inc()
			s.tenantCounter("throttles", flow).Inc()
			return perr
		}
		return errSiteClosed
	}
	q.enqueued.Add(1)
	s.reg.Counter("transcode_jobs").Inc()
	s.reg.Gauge("transcode_queue_depth").Set(int64(q.fq.Len()))
	return nil
}

func (s *Site) runTranscodeJob(job transcodeJob) {
	q := s.queue
	defer q.pending.Done()
	defer trace.FromContext(job.ctx).Release() // matches enqueueTranscode's Hold
	s.reg.Gauge("transcode_queue_depth").Set(int64(q.fq.Len()))
	wait := time.Since(job.enqueued)
	// The queue.job span crosses the async boundary: it is a child of the
	// uploading request's web.upload span (via the re-parented job context)
	// but starts on the worker goroutine after the queue wait.
	ctx, sp := s.tracer.StartSpan(job.ctx, "queue.job")
	if sp != nil {
		sp.AnnotateInt("video_id", job.videoID)
		sp.Annotate("queue_wait", wait.String())
	}
	s.reg.Histogram("transcode_wait_seconds").ObserveExemplar(wait.Seconds(), sp.TraceID())
	err := s.transcodeAndPublish(ctx, job.videoID, job.title, job.description, job.data, job.adm)
	if err != nil {
		sp.SetError(err)
	}
	sp.End()
	if err != nil {
		// Asynchronous failure: the uploader already got their id back, so
		// the row stays, marked failed, and the watch page explains.
		q.failed.Add(1)
		s.reg.Counter("transcode_failures").Inc()
		log.Printf("web: async conversion of video %d failed: %v", job.videoID, err)
		if uerr := s.db.Update("videos", job.videoID, videodb.Row{"status": statusFailed}); uerr != nil {
			log.Printf("web: marking video %d failed: %v", job.videoID, uerr)
		}
		return
	}
	q.completed.Add(1)
}

// transcodeAndPublish converts an inserted upload to the target plus every
// rendition in ONE farm pass (single parse/split of the source), stores the
// outputs through the FUSE mount, and publishes the row: path + renditions +
// status=ready, search index, recent-list invalidation, metrics.
//
// Quota/ledger contract (adm): on any failure every reservation is released
// here — callers only remove the row. On success the byte reservation is
// corrected to the exact stored size BEFORE the first write (so the tenant's
// reservation always covers what HDFS actually holds: overshoot is
// impossible by construction) and kept as the tenant's stored usage; the
// ledger gets exactly one bytes_stored and one transcode_seconds event.
func (s *Site) transcodeAndPublish(ctx context.Context, id int64, title, description string, data []byte, adm *admission) error {
	specs := append([]video.Spec{s.target}, s.renditions...)
	results, err := s.convertPooled(ctx, data, specs)
	if err != nil {
		adm.release()
		return fmt.Errorf("web: conversion failed: %w", err)
	}
	// Stage every output object — whole files plus the per-rendition
	// delivery segments (delivery.go) — before writing anything, so the
	// exact stored size is known up front.
	type object struct {
		path string
		data []byte
	}
	files := make([]object, 0, 2*(1+len(s.renditions)))
	path := fmt.Sprintf("videos/%d.vcf", id)
	files = append(files, object{path, results[0].Output})
	labels := []string{QualityLabel(s.target)}
	for i, spec := range s.renditions {
		files = append(files, object{fmt.Sprintf("videos/%d-%s.vcf", id, QualityLabel(spec)), results[i+1].Output})
		labels = append(labels, QualityLabel(spec))
	}
	segs := 0
	for i, spec := range specs {
		pieces, serr := video.Segments(results[i].Output, s.segSeconds)
		if serr != nil {
			adm.release()
			return fmt.Errorf("web: segmenting %s failed: %w", QualityLabel(spec), serr)
		}
		for k, piece := range pieces {
			files = append(files, object{segmentPath(id, QualityLabel(spec), k), piece})
		}
		segs = len(pieces)
	}
	var exactBytes int64
	for _, f := range files {
		exactBytes += int64(len(f.data))
	}
	// Correct the admission-time estimate to the exact footprint before any
	// write. Failure here means the estimate lied low and the exact size
	// busts the quota: nothing was stored, everything is released.
	if adm.ten != nil {
		if qerr := adm.ten.AdjustBytes(adm.estBytes, exactBytes); qerr != nil {
			adm.release() // AdjustBytes restored the estimate on failure
			return fmt.Errorf("web: publishing video %d: %w", id, qerr)
		}
		adm.estBytes = exactBytes
	}
	// written tracks files stored so far, so a partial failure (a later
	// write or the row update) cleans them up instead of leaving orphaned
	// objects in HDFS.
	written := make([]string, 0, len(files))
	unstore := func() {
		for _, p := range written {
			if rerr := s.store.Remove(p); rerr != nil {
				log.Printf("web: removing partial upload %s: %v", p, rerr)
			}
		}
	}
	ssp := trace.FromContext(ctx).StartChild("store.objects")
	for _, f := range files {
		if werr := s.store.WriteFileCtx(ctx, f.path, f.data); werr != nil {
			ssp.SetError(werr)
			ssp.End()
			unstore()
			adm.release()
			return fmt.Errorf("web: store %s failed: %w", f.path, werr)
		}
		written = append(written, f.path)
	}
	ssp.End()
	psp := trace.FromContext(ctx).StartChild("db.publish")
	row := videodb.Row{
		"path": path, "renditions": strings.Join(labels, ","), "status": statusReady,
		"seg_seconds": int64(s.segSeconds), "segments": int64(segs),
		"stored_bytes": exactBytes,
	}
	if adm.ten != nil {
		row["tenant"] = adm.ten.Name()
	}
	if uerr := s.db.Update("videos", id, row); uerr != nil {
		psp.SetError(uerr)
		psp.End()
		unstore()
		adm.release()
		return uerr
	}
	s.Index().Add(search.Document{ID: id, Title: title, Body: description})
	s.invalidateRecent()
	psp.End()
	// Publish succeeded: meter usage exactly once. The byte reservation is
	// now exact and stays held until the video is deleted; the transcode
	// window reservation is consumed.
	if adm.ten != nil {
		s.tenants.Meter(adm.ten.Name(), tenant.KindBytesStored, float64(exactBytes))
		s.tenants.Meter(adm.ten.Name(), tenant.KindTranscodeSeconds, adm.srcSecs)
	}
	res := results[0]
	s.reg.Counter("uploads").Inc()
	s.reg.Counter("upload_bytes").Add(int64(len(data)))
	s.reg.Histogram("conversion_seconds").Observe(res.Duration.Seconds())
	s.reg.Histogram("conversion_speedup").Observe(res.Speedup())
	s.reg.Histogram("conversion_wall_seconds").Observe(res.WallDuration.Seconds())
	return nil
}

// convertPooled runs a farm conversion over the pool's current node set.
// If the conversion is cancelled because a node was expelled mid-flight
// (drain-deadline expiry or a host crash), the work is requeued: it retries
// on a fresh node snapshot instead of failing the upload. The caller's own
// cancellation (site shutdown) still fails it.
func (s *Site) convertPooled(ctx context.Context, data []byte, specs []video.Spec) ([]*video.FarmResult, error) {
	for attempt := 0; ; attempt++ {
		cctx, farm, release := s.pool.acquire(ctx)
		results, err := farm.ConvertMultiContext(cctx, data, specs...)
		cause := context.Cause(cctx)
		release()
		if err == nil {
			return results, nil
		}
		if errors.Is(cause, errFarmNodeExpelled) && ctx.Err() == nil && attempt < 3 {
			s.reg.Counter("transcode_requeues").Inc()
			trace.FromContext(ctx).Annotate("requeue",
				fmt.Sprintf("farm node expelled mid-conversion (attempt %d)", attempt+1))
			continue
		}
		return nil, err
	}
}

// DrainTranscodes blocks until every job accepted so far has been published
// or marked failed. Experiments and tests call it to observe the steady
// state; a synchronous site returns immediately.
func (s *Site) DrainTranscodes() {
	if s.queue != nil {
		s.queue.pending.Wait()
	}
}

// Close shuts the transcode pool down after draining queued jobs. Uploads
// that race Close fail fast with an error instead of pushing into a closed
// queue: Close marks the queue closed first, waits for every already
// accepted job (including pushers still blocked on a full queue — workers
// keep draining until the fair queue closes), and only then closes it.
// It is idempotent and a no-op for a synchronous site.
func (s *Site) Close() {
	q := s.queue
	if q == nil {
		return
	}
	q.stop.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		q.pending.Wait()
		q.fq.Close()
		q.workers.Wait()
		q.cancel()
	})
}

// TranscodeStats summarises the async conversion pool for dashboards
// (core.Status carries it).
type TranscodeStats struct {
	// Workers is the pool size; 0 means the site converts synchronously.
	Workers int
	// QueueCap is the intake bound; sends past it block the uploader.
	QueueCap int
	// QueueDepth is the number of jobs waiting right now.
	QueueDepth int
	// Enqueued / Completed / Failed count jobs over the site's lifetime;
	// Throttled counts pushes refused by the weighted-fair gate (the tenant
	// was over its share and told to retry, not blocked).
	Enqueued, Completed, Failed, Throttled int64
	// WaitSeconds is the mean time jobs spent queued; WaitP99Seconds is the
	// tail — the elasticity controller's latency-side gauge.
	WaitSeconds    float64
	WaitP99Seconds float64
	// ActiveConversions counts farm conversions executing right now;
	// Requeues counts conversions retried after a node was expelled
	// mid-flight (drain-deadline expiry or host crash).
	ActiveConversions int
	Requeues          int64
	// Nodes is the conversion pool's per-node view: in-flight count and
	// draining flag for each node currently registered.
	Nodes []FarmNodeStat
	// WallSeconds is the mean measured wall-clock conversion time.
	WallSeconds float64
	// ModelledSpeedup is the mean modelled farm speedup of conversions.
	ModelledSpeedup float64
}

// TranscodeStats reports the pool's current state.
func (s *Site) TranscodeStats() TranscodeStats {
	wait := s.reg.Histogram("transcode_wait_seconds").Snapshot()
	st := TranscodeStats{
		WaitSeconds:     wait.Mean,
		WaitP99Seconds:  wait.P99,
		WallSeconds:     s.reg.Histogram("conversion_wall_seconds").Mean(),
		ModelledSpeedup: s.reg.Histogram("conversion_speedup").Mean(),
		Requeues:        s.reg.Counter("transcode_requeues").Value(),
	}
	st.Nodes, st.ActiveConversions = s.pool.snapshot()
	if q := s.queue; q != nil {
		st.Workers = q.nworkers
		st.QueueCap = q.fq.Cap()
		st.QueueDepth = q.fq.Len()
		st.Enqueued = q.enqueued.Load()
		st.Completed = q.completed.Load()
		st.Failed = q.failed.Load()
		st.Throttled = q.fq.Throttles()
	}
	return st
}
