package web

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// asyncSite builds a site with an async transcode pool whose farm workers
// block on gate (close it to let conversions run) or fail via hook.
func asyncSite(t testing.TB, workers, queueCap int, hook func(node string, segment int) error) *Site {
	t.Helper()
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		t.Fatal(err)
	}
	site, err := New(Config{
		Store:             mount,
		Farm:              video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}, FaultHook: hook},
		Target:            video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000},
		Renditions:        []video.Spec{{Codec: video.H264, Res: video.R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 50_000}},
		AdminUser:         "admin",
		AdminPassword:     "secret",
		TranscodeWorkers:  workers,
		TranscodeQueueCap: queueCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

func testUploadMedia(t testing.TB, seconds int, seed uint64) []byte {
	t.Helper()
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 80_000}
	data, err := video.Generate(src, seconds, seed)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func videoStatus(t testing.TB, s *Site, id int64) string {
	t.Helper()
	row, err := s.db.Get("videos", id)
	if err != nil {
		t.Fatalf("video %d: %v", id, err)
	}
	status, _ := row["status"].(string)
	return status
}

// TestAsyncUploadLifecycle is the queue's core contract: ProcessUpload
// returns immediately with the row in "processing" while the farm workers
// are still blocked, streaming answers 503, and after the pool drains the
// video is "ready" and streamable in both renditions.
func TestAsyncUploadLifecycle(t *testing.T) {
	gate := make(chan struct{})
	var openOnce sync.Once
	open := func() { openOnce.Do(func() { close(gate) }) }
	defer open() // a failing test must still unpark the workers for Close
	site := asyncSite(t, 2, 8, func(string, int) error {
		<-gate // hold every conversion task until the test releases it
		return nil
	})

	id, err := site.ProcessUpload(context.Background(), site.AdminID(), "held", "still converting", testUploadMedia(t, 12, 9))
	if err != nil {
		t.Fatal(err)
	}
	if got := videoStatus(t, site, id); got != statusProcessing {
		t.Fatalf("status right after upload = %q, want %q", got, statusProcessing)
	}

	b := newBrowser(t, site)
	resp, body := b.get(fmt.Sprintf("/stream/%d", id))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream while processing: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "still processing") {
		t.Fatalf("stream while processing: body %q", body)
	}
	if _, body := b.get(fmt.Sprintf("/watch/%d", id)); !strings.Contains(body, "converting on the farm") {
		t.Fatalf("watch page does not show the processing state: %q", body)
	}

	open()
	site.DrainTranscodes()

	if got := videoStatus(t, site, id); got != statusReady {
		t.Fatalf("status after drain = %q, want %q", got, statusReady)
	}
	for _, q := range []string{"", "?quality=360p"} {
		if resp, _ := b.get(fmt.Sprintf("/stream/%d%s", id, q)); resp.StatusCode != http.StatusOK {
			t.Fatalf("stream%s after drain: status %d", q, resp.StatusCode)
		}
	}
	st := site.TranscodeStats()
	if st.Workers != 2 || st.Enqueued != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if site.Metrics().Histogram("transcode_wait_seconds").Count() != 1 {
		t.Fatal("queue wait time not recorded")
	}
	if site.Metrics().Histogram("conversion_wall_seconds").Count() != 1 {
		t.Fatal("wall-clock conversion time not recorded")
	}
}

// TestAsyncUploadFailureMarksRow injects a farm fault: the uploader already
// has their id, so the row must flip to "failed" (not vanish) and streaming
// must report the file unavailable.
func TestAsyncUploadFailureMarksRow(t *testing.T) {
	boom := errors.New("node lost mid-conversion")
	site := asyncSite(t, 1, 4, func(string, int) error { return boom })

	id, err := site.ProcessUpload(context.Background(), site.AdminID(), "doomed", "", testUploadMedia(t, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	site.DrainTranscodes()
	if got := videoStatus(t, site, id); got != statusFailed {
		t.Fatalf("status after failed conversion = %q, want %q", got, statusFailed)
	}
	b := newBrowser(t, site)
	if resp, _ := b.get(fmt.Sprintf("/stream/%d", id)); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("stream of failed video: status %d, want 500", resp.StatusCode)
	}
	if _, body := b.get(fmt.Sprintf("/watch/%d", id)); !strings.Contains(body, "conversion failed") {
		t.Fatalf("watch page does not show the failed state: %q", body)
	}
	st := site.TranscodeStats()
	if st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if site.Metrics().Counter("transcode_failures").Value() != 1 {
		t.Fatal("transcode_failures not counted")
	}
}

// TestConcurrentUploadsThroughSharedPool drives many simultaneous uploads
// through one worker pool; run under -race (make tier1) it gates the
// queue's synchronization. Every upload must come out ready.
func TestConcurrentUploadsThroughSharedPool(t *testing.T) {
	site := asyncSite(t, 3, 4, nil)
	const uploads = 8
	ids := make([]int64, uploads)
	var wg sync.WaitGroup
	for i := 0; i < uploads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := site.ProcessUpload(context.Background(), site.AdminID(),
				fmt.Sprintf("clip %d", i), "concurrent", testUploadMedia(t, 8+2*i, uint64(i+1)))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	site.DrainTranscodes()
	for i, id := range ids {
		if id == 0 {
			continue // upload already reported its error
		}
		if got := videoStatus(t, site, id); got != statusReady {
			t.Fatalf("upload %d: status %q, want ready", i, got)
		}
	}
	if st := site.TranscodeStats(); st.Enqueued != uploads || st.Completed != uploads {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQueueBackpressure fills a cap-1 queue behind a blocked worker and
// checks the overflowing upload blocks (and is counted) instead of being
// dropped: all three uploads still convert.
func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var openOnce sync.Once
	open := func() { openOnce.Do(func() { close(gate) }) }
	defer open()
	var hold sync.Once
	site := asyncSite(t, 1, 1, func(string, int) error {
		hold.Do(func() { <-gate }) // first task parks the only worker
		return nil
	})

	first, err := site.ProcessUpload(context.Background(), site.AdminID(), "first", "", testUploadMedia(t, 8, 21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := site.ProcessUpload(context.Background(), site.AdminID(), "second", "", testUploadMedia(t, 8, 22)); err != nil {
		t.Fatal(err) // fills the single queue slot
	}
	done := make(chan int64)
	go func() {
		id, uerr := site.ProcessUpload(context.Background(), site.AdminID(), "third", "", testUploadMedia(t, 8, 23))
		if uerr != nil {
			t.Error(uerr)
		}
		done <- id
	}()
	select {
	case <-done:
		t.Fatal("third upload returned although the queue was full")
	default:
	}
	open()
	third := <-done
	site.DrainTranscodes()
	for _, id := range []int64{first, third} {
		if got := videoStatus(t, site, id); got != statusReady {
			t.Fatalf("video %d: status %q after drain", id, got)
		}
	}
	if site.Metrics().Counter("transcode_backpressure").Value() == 0 {
		t.Fatal("backpressure stall not counted")
	}
}

// TestTranscodeConfigValidation covers the new web.New guards.
func TestTranscodeConfigValidation(t *testing.T) {
	cluster := hdfs.NewCluster(2, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 1)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Store: mount,
		Farm:  video.Farm{Nodes: []string{"dn0"}},
	}
	bad := base
	bad.TranscodeWorkers = -1
	if _, err := New(bad); err == nil {
		t.Fatal("TranscodeWorkers -1 accepted")
	}
	bad = base
	bad.TranscodeQueueCap = -5
	if _, err := New(bad); err == nil {
		t.Fatal("TranscodeQueueCap -5 accepted")
	}
	if _, err := New(base); err != nil {
		t.Fatalf("zero transcode config rejected: %v", err)
	}
}

// TestSyncModeUnchanged pins the compatibility contract: without
// TranscodeWorkers, ProcessUpload converts inline, the row comes out ready,
// and a failed conversion leaves no row behind.
func TestSyncModeUnchanged(t *testing.T) {
	site, _ := newSite(t)
	id, err := site.ProcessUpload(context.Background(), site.AdminID(), "inline", "", testUploadMedia(t, 10, 31))
	if err != nil {
		t.Fatal(err)
	}
	if got := videoStatus(t, site, id); got != statusReady {
		t.Fatalf("sync upload status = %q, want ready immediately", got)
	}
	if st := site.TranscodeStats(); st.Workers != 0 || st.Enqueued != 0 {
		t.Fatalf("sync site reports pool activity: %+v", st)
	}
	site.Close()           // no-op without a pool
	site.DrainTranscodes() // likewise

	// A conversion failure must not leave a phantom row.
	mismatched, err := video.Generate(video.Spec{
		Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 3, BitrateBps: 80_000,
	}, 9, 32)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := site.db.Count("videos")
	if _, err := site.ProcessUpload(context.Background(), site.AdminID(), "bad cadence", "", mismatched); err == nil {
		t.Fatal("mismatched GOP cadence converted")
	}
	if after, _ := site.db.Count("videos"); after != before {
		t.Fatalf("failed sync upload left a row: %d -> %d", before, after)
	}
}

// TestStatusColumnInSchema guards the lifecycle column against schema
// regressions (old rows without it must still render, see handleStream).
func TestStatusColumnInSchema(t *testing.T) {
	site, _ := newSite(t)
	id, err := site.db.Insert("videos", videodb.Row{"title": "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	row, err := site.db.Get("videos", id)
	if err != nil {
		t.Fatal(err)
	}
	if status, ok := row["status"].(string); !ok || status != "" {
		t.Fatalf("legacy insert status = %#v, want empty string", row["status"])
	}
	// Empty status + empty path is the pre-queue "not available" case.
	b := newBrowser(t, site)
	if resp, _ := b.get(fmt.Sprintf("/stream/%d", id)); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("legacy pathless row: status %d, want 500", resp.StatusCode)
	}
}

// TestUploadAfterCloseFailsCleanly pins the shutdown contract: ProcessUpload
// racing (or following) Site.Close must fail with an error — never panic
// with a send on a closed channel — and must not leave a phantom
// "processing" row no worker will ever convert.
func TestUploadAfterCloseFailsCleanly(t *testing.T) {
	site := asyncSite(t, 2, 4, nil)
	site.Close()
	before, _ := site.db.Count("videos")
	if _, err := site.ProcessUpload(context.Background(), site.AdminID(), "late", "", testUploadMedia(t, 8, 41)); err == nil {
		t.Fatal("upload after Close succeeded")
	}
	if after, _ := site.db.Count("videos"); after != before {
		t.Fatalf("rejected upload left a row: %d -> %d", before, after)
	}
	site.Close() // still idempotent
}

// TestZeroGOPUploadRejected crafts the container that used to crash the
// server: a valid spec with a header claiming zero GOPs. Probe must reject
// it before a row or job exists, and the pool must stay alive for the next
// legitimate upload.
func TestZeroGOPUploadRejected(t *testing.T) {
	site := asyncSite(t, 1, 4, nil)
	meta := []byte(`{"spec":{"codec":"mpeg4","res":{"W":854,"H":480},"fps":30,"gop_seconds":2,"bitrate_bps":80000},"duration_seconds":0,"gops":0}`)
	crafted := append(binary.BigEndian.AppendUint32([]byte("VCF1"), uint32(len(meta))), meta...)
	before, _ := site.db.Count("videos")
	if _, err := site.ProcessUpload(context.Background(), site.AdminID(), "crafted", "", crafted); err == nil {
		t.Fatal("zero-GOP upload accepted")
	}
	if after, _ := site.db.Count("videos"); after != before {
		t.Fatalf("rejected upload left a row: %d -> %d", before, after)
	}
	id, err := site.ProcessUpload(context.Background(), site.AdminID(), "normal", "", testUploadMedia(t, 8, 51))
	if err != nil {
		t.Fatal(err)
	}
	site.DrainTranscodes()
	if got := videoStatus(t, site, id); got != statusReady {
		t.Fatalf("upload after rejected craft: status %q, want ready", got)
	}
}

// TestPartialStoreFailureCleansUp blocks the rendition path with a directory
// so the second store write fails after the main file landed: the publish
// must best-effort remove what it already wrote instead of orphaning
// videos/<id>*.vcf in HDFS.
func TestPartialStoreFailureCleansUp(t *testing.T) {
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		t.Fatal(err)
	}
	site, err := New(Config{
		Store:         mount,
		Farm:          video.Farm{Nodes: []string{"dn0", "dn1"}},
		Target:        video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000},
		Renditions:    []video.Spec{{Codec: video.H264, Res: video.R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 50_000}},
		AdminUser:     "admin",
		AdminPassword: "secret",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first video row gets id 1; a directory at its 360p rendition path
	// makes that WriteFile fail after videos/1.vcf has been stored.
	if err := mount.Mkdir("videos/1-360p.vcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := site.ProcessUpload(context.Background(), site.AdminID(), "partial", "", testUploadMedia(t, 8, 61)); err == nil {
		t.Fatal("upload with a blocked rendition path succeeded")
	}
	if mount.Exists("videos/1.vcf") {
		t.Fatal("main file orphaned in HDFS after partial store failure")
	}
	if n, _ := site.db.Count("videos"); n != 0 {
		t.Fatalf("failed sync upload left %d rows", n)
	}
}
