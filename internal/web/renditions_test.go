package web

import (
	"io"
	"strings"
	"testing"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/stream"
	"videocloud/internal/video"
)

// multiQualitySite builds a site with a 360p rendition beside the 720p
// target.
func multiQualitySite(t *testing.T) *Site {
	t.Helper()
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		t.Fatal(err)
	}
	site, err := New(Config{
		Store:  mount,
		Farm:   video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target: video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000},
		Renditions: []video.Spec{
			{Codec: video.H264, Res: video.R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 64_000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestRenditionsProducedAndSelectable(t *testing.T) {
	site := multiQualitySite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("alice", "pw")
	watch := b.upload("Multi quality", "both sizes", 20, 1)
	id := strings.TrimPrefix(watch, "/watch/")

	p := &stream.Player{HTTP: b.c}
	fetchSpec := func(url string) video.Spec {
		t.Helper()
		size, err := p.Probe(url)
		if err != nil {
			t.Fatalf("probe %s: %v", url, err)
		}
		data, err := p.FetchRange(url, 0, size-1)
		if err != nil {
			t.Fatal(err)
		}
		info, err := video.Probe(data)
		if err != nil {
			t.Fatal(err)
		}
		return info.Spec
	}
	// Default stream is the 720p target.
	if spec := fetchSpec(b.srv.URL + "/stream/" + id); spec.Res != video.R720p {
		t.Fatalf("default stream is %v", spec.Res)
	}
	// Explicit qualities.
	if spec := fetchSpec(b.srv.URL + "/stream/" + id + "?quality=720p"); spec.Res != video.R720p {
		t.Fatalf("720p stream is %v", spec.Res)
	}
	if spec := fetchSpec(b.srv.URL + "/stream/" + id + "?quality=360p"); spec.Res != video.R360p {
		t.Fatalf("360p stream is %v", spec.Res)
	}
	// Unknown quality 404s.
	resp, err := b.c.Get(b.srv.URL + "/stream/" + id + "?quality=1080p")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown quality status %d", resp.StatusCode)
	}
	// Watch page advertises both qualities.
	_, body := b.get(watch)
	if !strings.Contains(body, "quality=720p") || !strings.Contains(body, "quality=360p") {
		t.Fatalf("watch page missing quality links")
	}
}

func TestRenditionCadenceValidation(t *testing.T) {
	cluster := hdfs.NewCluster(2, 256*1024)
	mount, _ := fusebridge.New(cluster.Client(""), "/site", 1)
	_, err := New(Config{
		Store: mount,
		Farm:  video.Farm{Nodes: []string{"dn0"}},
		Renditions: []video.Spec{
			{Codec: video.H264, Res: video.R360p, FPS: 30, GOPSeconds: 4, BitrateBps: 64_000},
		},
	})
	if err == nil {
		t.Fatal("mismatched GOP cadence accepted")
	}
}

func TestRelatedVideosOnWatchPage(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("alice", "pw")
	w1 := b.upload("Dance practice one", "pop dance choreography studio", 10, 1)
	b.upload("Dance practice two", "pop dance choreography stage", 10, 2)
	b.upload("Cooking pasta", "recipe kitchen italian", 10, 3)
	_, body := b.get(w1)
	if !strings.Contains(body, "Related videos") {
		t.Fatalf("no related section:\n%s", body)
	}
	if !strings.Contains(body, "Dance practice two") {
		t.Fatal("thematically related video not listed")
	}
	// The related section must not link to the page itself.
	relSection := body[strings.Index(body, "Related videos"):]
	if strings.Contains(relSection, `href="`+w1+`"`) {
		t.Fatal("watch page lists itself as related")
	}
}
