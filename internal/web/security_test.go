package web

import (
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// The paper's §IV closes on "data security ... such as avoiding malicious
// attacks and theft of users' data. In the webpage, we have implemented
// some fundamental protection." These tests pin down that protection.

func TestXSSTitleAndCommentEscaped(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("mallory", "pw")
	watch := b.upload(`<script>alert(1)</script>`, `"><img onerror=x>`, 10, 1)
	_, body := b.get(watch)
	if strings.Contains(body, "<script>alert(1)</script>") {
		t.Fatal("title not escaped on watch page")
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Fatal("escaped title not rendered")
	}
	b.post(watch+"/comment", url.Values{"text": {`<script>steal()</script>`}})
	_, body = b.get(watch)
	if strings.Contains(body, "<script>steal()</script>") {
		t.Fatal("comment not escaped")
	}
	// Search results page escapes too.
	_, body = b.get("/search?q=" + url.QueryEscape("<script>alert(1)</script>"))
	if strings.Contains(body, "<script>alert(1)</script>") {
		t.Fatal("query echo not escaped")
	}
}

func TestPasswordsStoredHashedAndSalted(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("alice", "supersecret")
	row, err := site.DB().SelectOne("users", "username", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if row["password_hash"] == "supersecret" || strings.Contains(row["password_hash"].(string), "supersecret") {
		t.Fatal("password stored in the clear")
	}
	if row["salt"] == "" {
		t.Fatal("no salt")
	}
	// Same password, different user -> different hash (salted).
	b2 := newBrowser(t, site)
	b2.registerAndLogin("bob", "supersecret")
	row2, _ := site.DB().SelectOne("users", "username", "bob")
	if row["password_hash"] == row2["password_hash"] {
		t.Fatal("identical hashes for identical passwords: unsalted")
	}
}

func TestSessionTokenUnpredictableAndInvalidated(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("carol", "pw")
	u, _ := url.Parse(b.srv.URL)
	var token string
	for _, c := range b.c.Jar.Cookies(u) {
		if c.Name == "session" {
			token = c.Value
		}
	}
	if len(token) < 32 {
		t.Fatalf("session token too short: %q", token)
	}
	// A forged cookie is just an anonymous session.
	req, _ := http.NewRequest("GET", b.srv.URL+"/my", nil)
	req.AddCookie(&http.Cookie{Name: "session", Value: "forged0000000000"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Request.URL.Path != "/login" {
		t.Fatalf("forged session landed on %s", resp.Request.URL.Path)
	}
	// Logout invalidates the real token server-side.
	b.post("/logout", nil)
	req, _ = http.NewRequest("GET", b.srv.URL+"/my", nil)
	req.AddCookie(&http.Cookie{Name: "session", Value: token})
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.Request.URL.Path != "/login" {
		t.Fatal("token usable after logout")
	}
}

func TestVerificationTokenSingleUse(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	resp, err := b.c.PostForm(b.srv.URL+"/register", url.Values{
		"username": {"dave"}, "password": {"pw"}, "email": {"d@x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	link := resp.Header.Get("X-Verification-Link")
	if r, _ := b.get(link); r.StatusCode != 200 {
		t.Fatal("first verify failed")
	}
	if r, _ := b.get(link); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("reused verification token accepted (%d)", r.StatusCode)
	}
}

func TestStreamPathTraversalImpossible(t *testing.T) {
	// The stream handler resolves paths from database rows, never from
	// user input; a crafted id must 404, not read arbitrary HDFS paths.
	site, _ := newSite(t)
	b := newBrowser(t, site)
	for _, path := range []string{"/stream/../../etc", "/stream/..%2f..%2fsecret", "/stream/9999"} {
		resp, err := b.c.Get(b.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
	}
}
