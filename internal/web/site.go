// Package web is the video website of the paper's §IV and Figures 17-23: a
// Lighttpd+PHP application reproduced as a net/http server. It offers the
// same page set — search home, register, log-in/out, upload, player, and
// administration — over the same substrate mapping: accounts and film
// information in the database (videodb), uploads stored through the FUSE
// mount into HDFS (fusebridge), distributed FFmpeg conversion on upload
// (video.Farm), Nutch-style index search (search.Index), and seekable
// H.264 playback over HTTP ranges (stream.Serve).
package web

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"videocloud/internal/fusebridge"
	"videocloud/internal/metrics"
	"videocloud/internal/search"
	"videocloud/internal/trace"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// Config assembles a Site.
type Config struct {
	// Store is the FUSE mount where uploads land (required).
	Store *fusebridge.Mount
	// Farm performs distributed conversion of uploads (required: at
	// least one node).
	Farm video.Farm
	// Target is the playback encoding; zero selects the paper's H.264
	// 720p at 2 Mbps with 2-second GOPs.
	Target video.Spec
	// Renditions are additional encodings produced on upload (e.g. a
	// 360p mobile rendition); viewers pick with /stream/{id}?quality=.
	Renditions []video.Spec
	// AdminUser is created at startup with AdminPassword.
	AdminUser, AdminPassword string
	// MaxInFlight bounds concurrently admitted requests; excess load is
	// shed with 503. Zero selects a default of 256.
	MaxInFlight int
	// TranscodeWorkers sizes the asynchronous conversion pool. Zero keeps
	// uploads synchronous (ProcessUpload converts before returning);
	// positive values make uploads return immediately with status
	// "processing" while the pool converts in the background. Negative is
	// rejected.
	TranscodeWorkers int
	// TranscodeQueueCap bounds the async intake queue (default 64). A full
	// queue blocks uploaders — backpressure, not unbounded buffering.
	TranscodeQueueCap int
	// BreakerThreshold trips the HDFS read breaker after this many
	// consecutive storage failures on the streaming path (default 5);
	// BreakerCooldown is how long it stays open before probing again
	// (default 5s). See breaker.go.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Tracer, when non-nil and enabled, opens a root span per request in
	// the middleware and threads it through the upload/stream paths down
	// to HDFS block I/O. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
}

// QualityLabel names a rendition by its vertical resolution ("720p").
func QualityLabel(s video.Spec) string { return fmt.Sprintf("%dp", s.Res.H) }

// Site is the running website.
type Site struct {
	db         *videodb.DB
	store      *fusebridge.Mount
	index      *search.Index
	farm       video.Farm
	target     video.Spec
	renditions []video.Spec
	reg        *metrics.Registry
	mux        *http.ServeMux
	tracer     *trace.Tracer // nil-safe: all span operations no-op when nil

	// Serving-path state (middleware.go, cache.go).
	routeMetrics []*routeMetrics
	inflightNow  atomic.Int64
	maxInFlight  int64
	cache        hotCache

	// queue is the async transcode pool (queue.go); nil in synchronous
	// mode.
	queue *transcodeQueue

	// hdfsBreaker fails streaming fast while the store is down
	// (breaker.go).
	hdfsBreaker *breaker

	mu           sync.Mutex
	sessions     map[string]int64 // token -> user id
	verifyTokens map[string]int64 // emailed verification link -> user id
	adminID      int64
}

// New builds the site, creating its database schema and admin account.
func New(cfg Config) (*Site, error) {
	if cfg.Store == nil {
		return nil, errors.New("web: config missing Store")
	}
	if len(cfg.Farm.Nodes) == 0 {
		return nil, errors.New("web: farm has no conversion nodes")
	}
	target := cfg.Target
	if target.Codec == "" {
		target = video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 2_000_000}
	}
	if cfg.AdminUser == "" {
		cfg.AdminUser = "admin"
		cfg.AdminPassword = "admin"
	}
	for _, r := range cfg.Renditions {
		if r.GOPSeconds != target.GOPSeconds {
			return nil, fmt.Errorf("web: rendition %s GOP cadence differs from target", QualityLabel(r))
		}
	}
	if cfg.TranscodeWorkers < 0 {
		return nil, fmt.Errorf("web: TranscodeWorkers must be >= 0, got %d", cfg.TranscodeWorkers)
	}
	if cfg.TranscodeQueueCap < 0 {
		return nil, fmt.Errorf("web: TranscodeQueueCap must be >= 0, got %d", cfg.TranscodeQueueCap)
	}
	s := &Site{
		db:         videodb.New(),
		store:      cfg.Store,
		index:      search.NewIndex(),
		farm:       cfg.Farm,
		target:     target,
		renditions: cfg.Renditions,
		reg:        metrics.NewRegistry(),
		tracer:     cfg.Tracer,
		sessions:   make(map[string]int64),
	}
	s.maxInFlight = int64(cfg.MaxInFlight)
	if s.maxInFlight == 0 {
		s.maxInFlight = defaultMaxInFlight
	}
	s.hdfsBreaker = newBreaker(s.reg, cfg.BreakerThreshold, cfg.BreakerCooldown)
	if err := s.createSchema(); err != nil {
		return nil, err
	}
	adminID, err := s.register(cfg.AdminUser, cfg.AdminPassword, "admin@videocloud", true)
	if err != nil {
		return nil, err
	}
	s.adminID = adminID
	s.mux = s.routes()
	s.startTranscoders(cfg.TranscodeWorkers, cfg.TranscodeQueueCap)
	return s, nil
}

func (s *Site) createSchema() error {
	if err := s.db.CreateTable("users",
		videodb.Column{Name: "username", Type: videodb.TString, Unique: true},
		videodb.Column{Name: "password_hash", Type: videodb.TString},
		videodb.Column{Name: "salt", Type: videodb.TString},
		videodb.Column{Name: "email", Type: videodb.TString},
		videodb.Column{Name: "verified", Type: videodb.TBool},
		videodb.Column{Name: "blocked", Type: videodb.TBool, Indexed: true},
		videodb.Column{Name: "admin", Type: videodb.TBool},
	); err != nil {
		return err
	}
	if err := s.db.CreateTable("videos",
		videodb.Column{Name: "title", Type: videodb.TString},
		videodb.Column{Name: "description", Type: videodb.TString},
		videodb.Column{Name: "uploader_id", Type: videodb.TInt, Indexed: true},
		videodb.Column{Name: "path", Type: videodb.TString},
		videodb.Column{Name: "duration_seconds", Type: videodb.TInt},
		videodb.Column{Name: "views", Type: videodb.TInt},
		videodb.Column{Name: "reports", Type: videodb.TInt},
		videodb.Column{Name: "renditions", Type: videodb.TString},
		videodb.Column{Name: "status", Type: videodb.TString},
	); err != nil {
		return err
	}
	return s.db.CreateTable("comments",
		videodb.Column{Name: "video_id", Type: videodb.TInt, Indexed: true},
		videodb.Column{Name: "user_id", Type: videodb.TInt},
		videodb.Column{Name: "text", Type: videodb.TString},
	)
}

// DB exposes the underlying database (experiments query it directly).
func (s *Site) DB() *videodb.DB { return s.db }

// Index returns the live search index (the core re-indexes it via
// MapReduce).
func (s *Site) Index() *search.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index
}

// ReplaceIndex swaps in a freshly built index — the paper's "set Nutch
// searching engine [to] renew indexed material every certain time" (§III).
// In-flight queries finish on the old index.
func (s *Site) ReplaceIndex(ix *search.Index) {
	if ix == nil {
		return
	}
	s.mu.Lock()
	s.index = ix
	s.mu.Unlock()
	s.reg.Counter("index_refreshes").Inc()
}

// Documents exports every video as an indexable document, the corpus the
// periodic MapReduce re-index consumes.
func (s *Site) Documents() []search.Document {
	rows, _ := s.db.Scan("videos", func(videodb.Row) bool { return true })
	docs := make([]search.Document, 0, len(rows))
	for _, row := range rows {
		id, ok := row["id"].(int64)
		if !ok {
			continue // drifted row: nothing indexable
		}
		title, _ := row["title"].(string)
		body, _ := row["description"].(string)
		docs = append(docs, search.Document{ID: id, Title: title, Body: body})
	}
	return docs
}

// Metrics exposes site counters.
func (s *Site) Metrics() *metrics.Registry { return s.reg }

// Tracer exposes the site's tracer (nil when tracing is not configured).
func (s *Site) Tracer() *trace.Tracer { return s.tracer }

// Target returns the playback encoding spec.
func (s *Site) Target() video.Spec { return s.target }

// ServeHTTP implements http.Handler.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- accounts & sessions ----

func hashPassword(password, salt string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

func randomToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("web: entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// register creates an account. Matching the paper's flow, ordinary accounts
// start unverified and must confirm via the emailed link (§IV-B/C); the
// admin is pre-verified.
func (s *Site) register(username, password, email string, admin bool) (int64, error) {
	if username == "" || password == "" {
		return 0, errors.New("web: username and password required")
	}
	salt := randomToken()
	id, err := s.db.Insert("users", videodb.Row{
		"username": username, "salt": salt,
		"password_hash": hashPassword(password, salt),
		"email":         email, "verified": admin, "admin": admin,
	})
	if err != nil {
		return 0, err
	}
	s.reg.Counter("users_registered").Inc()
	return id, nil
}

// verifyUser marks the account verified (the emailed confirmation link).
func (s *Site) verifyUser(id int64) error {
	return s.db.Update("users", id, videodb.Row{"verified": true})
}

// login checks credentials and returns a session token.
func (s *Site) login(username, password string) (string, error) {
	row, err := s.db.SelectOne("users", "username", username)
	if err != nil {
		return "", errors.New("web: unknown user or wrong password")
	}
	hash := rowString(row, "password_hash")
	if hash == "" || hashPassword(password, rowString(row, "salt")) != hash {
		return "", errors.New("web: unknown user or wrong password")
	}
	if !rowBool(row, "verified") {
		return "", errors.New("web: account not verified — follow the email link first")
	}
	if rowBool(row, "blocked") {
		return "", errors.New("web: account blocked by the administrator")
	}
	token := randomToken()
	s.mu.Lock()
	s.sessions[token] = rowInt(row, "id")
	s.mu.Unlock()
	s.reg.Counter("logins").Inc()
	return token, nil
}

func (s *Site) logout(token string) {
	s.mu.Lock()
	delete(s.sessions, token)
	s.mu.Unlock()
}

// currentUser resolves the request's session cookie to a user row, or nil.
func (s *Site) currentUser(r *http.Request) videodb.Row {
	c, err := r.Cookie("session")
	if err != nil {
		return nil
	}
	s.mu.Lock()
	id, ok := s.sessions[c.Value]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	row, err := s.db.Get("users", id)
	if err != nil {
		return nil
	}
	return row
}
