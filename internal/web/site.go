// Package web is the video website of the paper's §IV and Figures 17-23: a
// Lighttpd+PHP application reproduced as a net/http server. It offers the
// same page set — search home, register, log-in/out, upload, player, and
// administration — over the same substrate mapping: accounts and film
// information in the database (videodb), uploads stored through the FUSE
// mount into HDFS (fusebridge), distributed FFmpeg conversion on upload
// (video.Farm), Nutch-style index search (search.Index), and seekable
// H.264 playback over HTTP ranges (stream.Serve).
package web

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"videocloud/internal/edge"
	"videocloud/internal/fusebridge"
	"videocloud/internal/metrics"
	"videocloud/internal/search"
	"videocloud/internal/tenant"
	"videocloud/internal/trace"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// Config assembles a Site.
type Config struct {
	// Store is the FUSE mount where uploads land (required).
	Store *fusebridge.Mount
	// DB is the metadata store. Nil builds a private single-instance
	// videodb.DB (the paper's one MySQL box); a serving fleet passes a
	// shared videodb.ShardedDB so every replica sees the same catalog.
	DB videodb.Store
	// Farm performs distributed conversion of uploads (required: at
	// least one node).
	Farm video.Farm
	// Target is the playback encoding; zero selects the paper's H.264
	// 720p at 2 Mbps with 2-second GOPs.
	Target video.Spec
	// Renditions are additional encodings produced on upload (e.g. a
	// 360p mobile rendition); viewers pick with /stream/{id}?quality=.
	Renditions []video.Spec
	// AdminUser is created at startup with AdminPassword.
	AdminUser, AdminPassword string
	// MaxInFlight bounds concurrently admitted requests; excess load is
	// shed with 503. Zero selects a default of 256.
	MaxInFlight int
	// TranscodeWorkers sizes the asynchronous conversion pool. Zero keeps
	// uploads synchronous (ProcessUpload converts before returning);
	// positive values make uploads return immediately with status
	// "processing" while the pool converts in the background. Negative is
	// rejected.
	TranscodeWorkers int
	// TranscodeQueueCap bounds the async intake queue (default 64). A full
	// queue blocks uploaders — backpressure, not unbounded buffering.
	TranscodeQueueCap int
	// BreakerThreshold trips the HDFS read breaker after this many
	// consecutive storage failures on the streaming path (default 5);
	// BreakerCooldown is how long it stays open before probing again
	// (default 5s). See breaker.go.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Tracer, when non-nil and enabled, opens a root span per request in
	// the middleware and threads it through the upload/stream paths down
	// to HDFS block I/O. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// StreamRateBytesPerSec caps this replica's aggregate streaming egress
	// (a per-frontend NIC model: the paper's web VM sits on one GbE port).
	// Zero leaves streaming unpaced.
	StreamRateBytesPerSec int64
	// SegmentSeconds is the play length of delivery segments cut from each
	// rendition at publish time (default 4; must be a multiple of the
	// target's GOP cadence so segments end on GOP boundaries).
	SegmentSeconds int
	// EdgeCacheBytes sizes this replica's in-memory edge cache for playlist
	// and segment responses (default 64 MiB). The cache is per-frontend, so
	// fleet capacity scales with replicas.
	EdgeCacheBytes int64
	// LiveEdgeTTL bounds how stale a cached playlist may be (default
	// 200ms). Playlists change — live channels grow, titles get deleted —
	// so they are cached with this TTL; published segments are immutable
	// and cached without one.
	LiveEdgeTTL time.Duration
	// Tenants is the multi-tenant registry: API-token auth, per-tenant
	// quotas, the usage ledger, and fair-share transcode weights all hang
	// off it. Nil builds a private registry holding only the default
	// tenant, which preserves the single-operator behaviour exactly. A
	// serving fleet shares the primary's registry.
	Tenants *tenant.Registry
}

// QualityLabel names a rendition by its vertical resolution ("720p").
func QualityLabel(s video.Spec) string { return fmt.Sprintf("%dp", s.Res.H) }

// fleetState is the metadata every replica of a serving fleet shares: the
// (possibly sharded) database, the search index, the session and
// verification-token tables, and the cache-invalidation fan-out. A
// single-replica site owns a private instance; NewReplica hands additional
// frontends the same one, so a login on replica 0 is valid on replica 7 and
// an upload through any replica invalidates every replica's hot cache.
type fleetState struct {
	db      videodb.Store
	tenants *tenant.Registry

	mu    sync.Mutex
	index *search.Index
	// Session and verification tokens are stored by SHA-256 digest, never
	// in cleartext: lookups hash the presented token and compare digests
	// via the map key, which is a constant-time comparison with respect to
	// the stored credentials (and a state dump leaks no usable tokens).
	sessions     map[[32]byte]int64 // sha256(token) -> user id
	verifyTokens map[[32]byte]int64 // sha256(emailed verification link) -> user id
	adminID      int64

	// recentGen is bumped on every recent-list invalidation; each
	// replica's hotCache tags its cached list with the generation it was
	// built at, so one bump invalidates the whole fleet without touching
	// per-replica locks.
	recentGen atomic.Int64

	// caches lists every replica's hotCache for targeted username
	// invalidation (admin block fan-out).
	cmu    sync.Mutex
	caches []*hotCache
}

// Site is one running frontend replica of the website. Replicas built with
// NewReplica share a fleetState; everything else — route metrics, hot
// caches, transcode pool, circuit breaker, stream pacer — is per-replica.
type Site struct {
	state      *fleetState
	db         videodb.Store // == state.db, cached for the hot paths
	store      *fusebridge.Mount
	farm       video.Farm // static config; conversions snapshot via pool
	pool       *farmPool  // runtime node set (elastic add/drain/remove)
	target     video.Spec
	renditions []video.Spec
	reg        *metrics.Registry
	mux        *http.ServeMux
	tracer     *trace.Tracer // nil-safe: all span operations no-op when nil

	// Serving-path state (middleware.go, cache.go).
	routeMetrics []*routeMetrics
	inflightNow  atomic.Int64
	maxInFlight  int64
	cache        hotCache

	// streamPacer caps this replica's streaming egress; nil = unpaced.
	streamPacer *pacer

	// Segmented-delivery state (delivery.go, live.go): the per-replica edge
	// cache and the publish-time segmentation parameters.
	edge       *edge.Cache
	segSeconds int
	liveTTL    time.Duration

	// queue is the async transcode pool (queue.go); nil in synchronous
	// mode.
	queue *transcodeQueue

	// hdfsBreaker fails streaming fast while the store is down
	// (breaker.go).
	hdfsBreaker *breaker

	// tenants caches state.tenants for the hot paths (tenant.go).
	tenants *tenant.Registry
	// tenantCounters holds bounded per-tenant instruments; videoTenant
	// caches video id -> owning tenant for egress attribution on the warm
	// segment path (no database read per cached hit).
	tmu            sync.Mutex
	tenantCounters map[string]*metrics.Counter
	videoTenant    map[int64]string
}

// validate normalises a Config and reports the first assembly error.
func (cfg *Config) validate() error {
	if cfg.Store == nil {
		return errors.New("web: config missing Store")
	}
	if len(cfg.Farm.Nodes) == 0 {
		return errors.New("web: farm has no conversion nodes")
	}
	if cfg.Target.Codec == "" {
		cfg.Target = video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 2_000_000}
	}
	if cfg.AdminUser == "" {
		cfg.AdminUser = "admin"
		cfg.AdminPassword = "admin"
	}
	for _, r := range cfg.Renditions {
		if r.GOPSeconds != cfg.Target.GOPSeconds {
			return fmt.Errorf("web: rendition %s GOP cadence differs from target", QualityLabel(r))
		}
	}
	if cfg.TranscodeWorkers < 0 {
		return fmt.Errorf("web: TranscodeWorkers must be >= 0, got %d", cfg.TranscodeWorkers)
	}
	if cfg.TranscodeQueueCap < 0 {
		return fmt.Errorf("web: TranscodeQueueCap must be >= 0, got %d", cfg.TranscodeQueueCap)
	}
	if cfg.StreamRateBytesPerSec < 0 {
		return fmt.Errorf("web: StreamRateBytesPerSec must be >= 0, got %d", cfg.StreamRateBytesPerSec)
	}
	if cfg.SegmentSeconds < 0 {
		return fmt.Errorf("web: SegmentSeconds must be >= 0, got %d", cfg.SegmentSeconds)
	}
	if cfg.SegmentSeconds == 0 {
		cfg.SegmentSeconds = 2 * cfg.Target.GOPSeconds
	}
	if cfg.Target.GOPSeconds <= 0 || cfg.SegmentSeconds%cfg.Target.GOPSeconds != 0 {
		return fmt.Errorf("web: SegmentSeconds %d is not a multiple of the target's %ds GOP cadence",
			cfg.SegmentSeconds, cfg.Target.GOPSeconds)
	}
	if cfg.EdgeCacheBytes < 0 {
		return fmt.Errorf("web: EdgeCacheBytes must be >= 0, got %d", cfg.EdgeCacheBytes)
	}
	if cfg.EdgeCacheBytes == 0 {
		cfg.EdgeCacheBytes = 64 << 20
	}
	if cfg.LiveEdgeTTL < 0 {
		return fmt.Errorf("web: LiveEdgeTTL must be >= 0, got %v", cfg.LiveEdgeTTL)
	}
	if cfg.LiveEdgeTTL == 0 {
		cfg.LiveEdgeTTL = 200 * time.Millisecond
	}
	return nil
}

// assemble builds the per-replica half of a Site around shared fleet state.
func assemble(cfg Config, state *fleetState) *Site {
	s := &Site{
		state:       state,
		db:          state.db,
		store:       cfg.Store,
		farm:        cfg.Farm,
		pool:        newFarmPool(cfg.Farm),
		target:      cfg.Target,
		renditions:  cfg.Renditions,
		reg:         metrics.NewRegistry(),
		tracer:      cfg.Tracer,
		streamPacer: newPacer(cfg.StreamRateBytesPerSec),
		edge:        edge.New(edge.Config{CapacityBytes: cfg.EdgeCacheBytes}),
		segSeconds:  cfg.SegmentSeconds,
		liveTTL:     cfg.LiveEdgeTTL,
		tenants:     state.tenants,
		videoTenant: make(map[int64]string),
	}
	s.maxInFlight = int64(cfg.MaxInFlight)
	if s.maxInFlight == 0 {
		s.maxInFlight = defaultMaxInFlight
	}
	s.hdfsBreaker = newBreaker(s.reg, cfg.BreakerThreshold, cfg.BreakerCooldown)
	state.cmu.Lock()
	state.caches = append(state.caches, &s.cache)
	state.cmu.Unlock()
	s.mux = s.routes()
	s.startTranscoders(cfg.TranscodeWorkers, cfg.TranscodeQueueCap)
	return s
}

// New builds the site, creating its database schema and admin account. The
// result is the fleet's primary replica; pass it to NewReplica to add more
// frontends over the same metadata.
func New(cfg Config) (*Site, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db := cfg.DB
	if db == nil {
		db = videodb.New()
	}
	reg := cfg.Tenants
	if reg == nil {
		reg = tenant.NewRegistry()
	}
	state := &fleetState{
		db:       db,
		tenants:  reg,
		index:    search.NewIndex(),
		sessions: make(map[[32]byte]int64),
	}
	s := assemble(cfg, state)
	if err := s.createSchema(); err != nil {
		return nil, err
	}
	adminID, err := s.register(cfg.AdminUser, cfg.AdminPassword, "admin@videocloud", true)
	if err != nil {
		return nil, err
	}
	state.mu.Lock()
	state.adminID = adminID
	state.mu.Unlock()
	return s, nil
}

// NewReplica builds an additional frontend over primary's fleet state: same
// database, index, sessions, and admin account, but its own hot caches,
// metrics, transcode pool, circuit breaker, and stream pacer. cfg must name
// the same Store mount; schema creation and admin registration are skipped
// (the primary already did both).
func NewReplica(cfg Config, primary *Site) (*Site, error) {
	if primary == nil {
		return nil, errors.New("web: NewReplica needs a primary site")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DB != nil && cfg.DB != primary.state.db {
		return nil, errors.New("web: replica config names a different DB than the fleet's")
	}
	if cfg.Tenants != nil && cfg.Tenants != primary.state.tenants {
		return nil, errors.New("web: replica config names a different tenant registry than the fleet's")
	}
	return assemble(cfg, primary.state), nil
}

func (s *Site) createSchema() error {
	if err := s.db.CreateTable("users",
		videodb.Column{Name: "username", Type: videodb.TString, Unique: true},
		videodb.Column{Name: "password_hash", Type: videodb.TString},
		videodb.Column{Name: "salt", Type: videodb.TString},
		videodb.Column{Name: "email", Type: videodb.TString},
		videodb.Column{Name: "verified", Type: videodb.TBool},
		videodb.Column{Name: "blocked", Type: videodb.TBool, Indexed: true},
		videodb.Column{Name: "admin", Type: videodb.TBool},
		videodb.Column{Name: "tenant", Type: videodb.TString},
	); err != nil {
		return err
	}
	if err := s.db.CreateTable("videos",
		videodb.Column{Name: "title", Type: videodb.TString},
		videodb.Column{Name: "description", Type: videodb.TString},
		videodb.Column{Name: "uploader_id", Type: videodb.TInt, Indexed: true},
		videodb.Column{Name: "path", Type: videodb.TString},
		videodb.Column{Name: "duration_seconds", Type: videodb.TInt},
		videodb.Column{Name: "views", Type: videodb.TInt},
		videodb.Column{Name: "reports", Type: videodb.TInt},
		videodb.Column{Name: "renditions", Type: videodb.TString},
		videodb.Column{Name: "status", Type: videodb.TString},
		videodb.Column{Name: "seg_seconds", Type: videodb.TInt},
		videodb.Column{Name: "segments", Type: videodb.TInt},
		videodb.Column{Name: "tenant", Type: videodb.TString},
		videodb.Column{Name: "stored_bytes", Type: videodb.TInt},
	); err != nil {
		return err
	}
	return s.db.CreateTable("comments",
		videodb.Column{Name: "video_id", Type: videodb.TInt, Indexed: true},
		videodb.Column{Name: "user_id", Type: videodb.TInt},
		videodb.Column{Name: "text", Type: videodb.TString},
	)
}

// DB exposes the underlying database (experiments query it directly).
func (s *Site) DB() videodb.Store { return s.db }

// Index returns the live search index, shared by every fleet replica (the
// core re-indexes it via MapReduce).
func (s *Site) Index() *search.Index {
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	return s.state.index
}

// ReplaceIndex swaps in a freshly built index — the paper's "set Nutch
// searching engine [to] renew indexed material every certain time" (§III).
// In-flight queries finish on the old index; every replica sees the new one.
func (s *Site) ReplaceIndex(ix *search.Index) {
	if ix == nil {
		return
	}
	s.state.mu.Lock()
	s.state.index = ix
	s.state.mu.Unlock()
	s.reg.Counter("index_refreshes").Inc()
}

// Documents exports every video as an indexable document, the corpus the
// periodic MapReduce re-index consumes.
func (s *Site) Documents() []search.Document {
	rows, _ := s.db.Scan("videos", func(videodb.Row) bool { return true })
	docs := make([]search.Document, 0, len(rows))
	for _, row := range rows {
		id, ok := row["id"].(int64)
		if !ok {
			continue // drifted row: nothing indexable
		}
		title, _ := row["title"].(string)
		body, _ := row["description"].(string)
		docs = append(docs, search.Document{ID: id, Title: title, Body: body})
	}
	return docs
}

// AdminID returns the administrator account's user id (shared fleet-wide).
func (s *Site) AdminID() int64 {
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	return s.state.adminID
}

// Metrics exposes this replica's counters (each fleet frontend keeps its
// own registry — per-replica latency is the scaling experiment's signal).
func (s *Site) Metrics() *metrics.Registry { return s.reg }

// Tracer exposes the site's tracer (nil when tracing is not configured).
func (s *Site) Tracer() *trace.Tracer { return s.tracer }

// EdgeStats snapshots this replica's edge-cache behaviour (core.Status and
// the delivery experiments read it).
func (s *Site) EdgeStats() edge.Stats { return s.edge.Stats() }

// Target returns the playback encoding spec.
func (s *Site) Target() video.Spec { return s.target }

// ServeHTTP implements http.Handler.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- accounts & sessions ----

func hashPassword(password, salt string) string {
	sum := sha256.Sum256([]byte(salt + ":" + password))
	return hex.EncodeToString(sum[:])
}

// randomToken mints session/verification tokens through the shared
// tenant.NewToken generator (one entropy source, one token shape, for API
// tokens and web sessions alike).
func randomToken() string { return tenant.NewToken() }

// register creates an account. Matching the paper's flow, ordinary accounts
// start unverified and must confirm via the emailed link (§IV-B/C); the
// admin is pre-verified.
func (s *Site) register(username, password, email string, admin bool) (int64, error) {
	if username == "" || password == "" {
		return 0, errors.New("web: username and password required")
	}
	salt := randomToken()
	id, err := s.db.Insert("users", videodb.Row{
		"username": username, "salt": salt,
		"password_hash": hashPassword(password, salt),
		"email":         email, "verified": admin, "admin": admin,
	})
	if err != nil {
		return 0, err
	}
	s.reg.Counter("users_registered").Inc()
	return id, nil
}

// verifyUser marks the account verified (the emailed confirmation link).
func (s *Site) verifyUser(id int64) error {
	return s.db.Update("users", id, videodb.Row{"verified": true})
}

// login checks credentials and returns a session token.
func (s *Site) login(username, password string) (string, error) {
	row, err := s.db.SelectOne("users", "username", username)
	if err != nil {
		return "", errors.New("web: unknown user or wrong password")
	}
	hash := rowString(row, "password_hash")
	if hash == "" || hashPassword(password, rowString(row, "salt")) != hash {
		return "", errors.New("web: unknown user or wrong password")
	}
	if !rowBool(row, "verified") {
		return "", errors.New("web: account not verified — follow the email link first")
	}
	if rowBool(row, "blocked") {
		return "", errors.New("web: account blocked by the administrator")
	}
	token := randomToken()
	s.state.mu.Lock()
	s.state.sessions[tenant.HashToken(token)] = rowInt(row, "id")
	s.state.mu.Unlock()
	s.reg.Counter("logins").Inc()
	return token, nil
}

func (s *Site) logout(token string) {
	s.state.mu.Lock()
	delete(s.state.sessions, tenant.HashToken(token))
	s.state.mu.Unlock()
}

// currentUser resolves the request's session cookie to a user row, or nil.
// Sessions live in the fleet state: a token minted by any replica
// authenticates on every replica.
func (s *Site) currentUser(r *http.Request) videodb.Row {
	c, err := r.Cookie("session")
	if err != nil {
		return nil
	}
	s.state.mu.Lock()
	id, ok := s.state.sessions[tenant.HashToken(c.Value)]
	s.state.mu.Unlock()
	if !ok {
		return nil
	}
	row, err := s.db.Get("users", id)
	if err != nil {
		return nil
	}
	return row
}
