package web

import (
	"encoding/json"
	"testing"
)

func TestSuggestEndpoint(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("alice", "pw")
	b.upload("Dance practice", "pop dance", 10, 1)
	b.upload("Dandelion timelapse", "nature", 10, 2)

	_, body := b.get("/suggest?q=dan")
	var got []string
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("not JSON: %v (%s)", err, body)
	}
	if len(got) < 2 {
		t.Fatalf("suggestions = %v", got)
	}
	// Empty query gives an empty array, not null.
	_, body = b.get("/suggest?q=")
	if body != "[]\n" {
		t.Fatalf("empty query body = %q", body)
	}
}
