package web

import "html/template"

// The page templates reproduce the structure of Figures 17-23: a shared
// shell with navigation, then per-page bodies. CSS3/jQuery niceties of the
// original reduce to a stylesheet block; the information architecture —
// search box front and centre, register/login/upload/player/admin pages —
// is the paper's.
var pageTpl = template.Must(template.New("shell").Parse(`
{{define "shell"}}<!DOCTYPE html>
<html><head><title>{{.Title}} — VideoCloud</title>
<style>
body{font-family:sans-serif;margin:2em auto;max-width:52em}
nav a{margin-right:1em} .error{color:#b00} .hit{margin:.6em 0}
.player{background:#000;color:#fff;padding:1em;width:640px;height:360px}
.timebar{background:#444;height:6px;width:640px} .social a{margin-right:.6em}
</style></head>
<body>
<nav>
<a href="/">Search</a><a href="/upload">Upload</a><a href="/my">My videos</a>
{{if .User}}<span>signed in as <b>{{.User}}</b></span>
<form method="post" action="/logout" style="display:inline"><button>Log out</button></form>
{{else}}<a href="/register">Register</a><a href="/login">Log in</a>{{end}}
{{if .Admin}}<a href="/admin">Admin</a>{{end}}
</nav>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
{{template "body" .}}
</body></html>{{end}}

{{define "home"}}{{template "shell" .}}{{end}}
{{define "body"}}
{{if eq .Page "home"}}
<h1>VideoCloud</h1>
<form action="/search" method="get">
<input name="q" size="50" value="{{.Query}}" placeholder="search videos">
<button>Search</button></form>
{{if .Hits}}<h2>Results for “{{.Query}}”</h2>
{{range .Hits}}<div class="hit"><a href="/watch/{{.ID}}">{{.Title}}</a>
 — {{.Description}} <small>({{.Views}} views)</small></div>{{end}}
{{else if .Query}}<p>No videos matched.</p>{{end}}
{{if .Recent}}<h2>Recent uploads</h2>
{{range .Recent}}<div class="hit"><a href="/watch/{{.ID}}">{{.Title}}</a></div>{{end}}{{end}}

{{else if eq .Page "register"}}
<h1>Register</h1>
<form method="post" action="/register">
<p><input name="username" placeholder="account"></p>
<p><input name="password" type="password" placeholder="password"></p>
<p><input name="email" placeholder="email"></p>
<button>Create account</button></form>
<p>A verification link will be sent to your mailbox.</p>

{{else if eq .Page "login"}}
<h1>Log in</h1>
<form method="post" action="/login">
<p><input name="username" placeholder="account"></p>
<p><input name="password" type="password" placeholder="password"></p>
<button>Log in</button></form>

{{else if eq .Page "upload"}}
<h1>Upload a video</h1>
<form method="post" action="/upload" enctype="multipart/form-data">
<p><input name="title" size="50" placeholder="title"></p>
<p><textarea name="description" cols="50" rows="3" placeholder="description"></textarea></p>
<p><input type="file" name="video"></p>
<button>Upload</button></form>
<p>Files are converted to H.264 in parallel across the cloud and stored in HDFS.</p>

{{else if eq .Page "watch"}}
<h1>{{.Video.Title}}</h1>
{{if eq .Video.Status "processing"}}
<div class="player processing" id="flowplayer">
  ⏳ converting on the farm — refresh once the video is ready
</div>
{{else if eq .Video.Status "failed"}}
<div class="player failed" id="flowplayer">
  ✖ conversion failed — this upload cannot be played
</div>
{{else}}
<div class="player" id="flowplayer" data-src="/stream/{{.Video.ID}}">
  ▶ streaming /stream/{{.Video.ID}} ({{.Video.Duration}}s, 720p H.264)
  <div class="timebar"></div>
</div>
{{end}}
<p>{{.Video.Description}}</p>
<p><small>uploaded by {{.Video.Uploader}} · {{.Video.Views}} views</small>
{{if gt (len .Qualities) 1}} · quality:
{{range .Qualities}}<a href="/stream/{{$.Video.ID}}?quality={{.}}">{{.}}</a> {{end}}{{end}}</p>
{{if .Related}}<h2>Related videos</h2>
{{range .Related}}<div class="hit"><a href="/watch/{{.ID}}">{{.Title}}</a></div>{{end}}{{end}}
<div class="social">
<a href="https://facebook.com/share?u=/watch/{{.Video.ID}}">Facebook</a>
<a href="https://plurk.com/share?u=/watch/{{.Video.ID}}">Plurk</a>
<a href="https://twitter.com/share?u=/watch/{{.Video.ID}}">Twitter</a>
</div>
{{if .Owner}}
<form method="post" action="/watch/{{.Video.ID}}/edit">
<input name="title" value="{{.Video.Title}}"><input name="description" value="{{.Video.Description}}">
<button>Save</button></form>
<form method="post" action="/watch/{{.Video.ID}}/delete"><button>Delete video</button></form>
{{end}}
<form method="post" action="/watch/{{.Video.ID}}/report"><button>Report this film</button></form>
<h2>Comments</h2>
{{range .Comments}}<p><b>{{.User}}</b>: {{.Text}}</p>{{end}}
{{if .User}}<form method="post" action="/watch/{{.Video.ID}}/comment">
<input name="text" size="60" placeholder="leave a message"><button>Post</button></form>{{end}}

{{else if eq .Page "my"}}
<h1>My videos</h1>
{{range .Hits}}<div class="hit"><a href="/watch/{{.ID}}">{{.Title}}</a></div>{{else}}<p>No uploads yet.</p>{{end}}

{{else if eq .Page "admin"}}
<h1>Administration</h1>
<h2>Users</h2>
{{range .Users}}<p>{{.Name}} {{if .Blocked}}(blocked){{end}}
<form method="post" action="/admin/block" style="display:inline">
<input type="hidden" name="user" value="{{.Name}}">
<input type="hidden" name="blocked" value="{{if .Blocked}}false{{else}}true{{end}}">
<button>{{if .Blocked}}Unblock{{else}}Block{{end}}</button></form></p>{{end}}
<h2>Reported videos</h2>
{{range .Hits}}<p><a href="/watch/{{.ID}}">{{.Title}}</a> — {{.Reports}} reports
<form method="post" action="/watch/{{.ID}}/delete" style="display:inline"><button>Remove</button></form></p>
{{else}}<p>No reports.</p>{{end}}
{{end}}
{{end}}
`))

// view is the template context for every page.
type view struct {
	Page      string
	Title     string
	User      string
	Admin     bool
	Error     string
	Query     string
	Hits      []videoView
	Recent    []videoView
	Video     videoView
	Owner     bool
	Qualities []string
	Related   []videoView
	Comments  []commentView
	Users     []userView
}

type videoView struct {
	ID          int64
	Title       string
	Description string
	Uploader    string
	Duration    int64
	Views       int64
	Reports     int64
	// Status is the conversion lifecycle state ("processing", "ready",
	// "failed"); empty for rows predating the status column, which render
	// as ready.
	Status string
}

type commentView struct {
	User string
	Text string
}

type userView struct {
	Name    string
	Blocked bool
}
