package web

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"videocloud/internal/metrics"
	"videocloud/internal/tenant"
	"videocloud/internal/videodb"
)

// Multi-tenant plumbing for the web tier: Bearer-token resolution (the
// middleware attaches the tenant to the request context), the principal
// abstraction unifying session users and API tokens, quota admission for
// uploads, egress attribution, and bounded per-tenant instruments.

// Tenants exposes the fleet's tenant registry (core wires quotas, tokens,
// and the usage ledger through it).
func (s *Site) Tenants() *tenant.Registry { return s.tenants }

// errNeedAuth maps to 401 (no credentials at all); errForbidden maps to
// 403 (credentials that don't authorize this object).
var (
	errNeedAuth  = errors.New("web: authentication required")
	errForbidden = errors.New("web: not the uploader")
)

// principal is whoever a request acts as: either a session user (cookie)
// or an API token (Authorization: Bearer, resolved by the middleware into
// the request context). Every principal belongs to exactly one tenant;
// session users with no tenant column belong to the default tenant.
type principal struct {
	userID int64 // 0 for token-only principals
	ten    *tenant.Tenant
	role   tenant.Role
}

// tenantName returns the principal's tenant name (default when unset).
func (p *principal) tenantName() string {
	if p.ten != nil {
		return p.ten.Name()
	}
	return tenant.DefaultName
}

// isOperator reports whether the principal is the cloud operator: an admin
// of the default tenant, who sees and may act on every tenant's resources.
func (p *principal) isOperator() bool {
	return p.role == tenant.RoleAdmin && (p.ten == nil || p.ten.IsDefault())
}

// principal resolves the request's identity. An API token attached to the
// context by the middleware wins over a session cookie; with neither, the
// request is anonymous (nil).
func (s *Site) principal(r *http.Request) *principal {
	if ten, role, ok := tenant.FromContext(r.Context()); ok {
		return &principal{ten: ten, role: role}
	}
	user := s.currentUser(r)
	if user == nil {
		return nil
	}
	role := tenant.RoleWriter
	if rowBool(user, "admin") {
		role = tenant.RoleAdmin
	}
	tname, _ := user["tenant"].(string) // tolerant: pre-tenant rows have no column
	return &principal{userID: rowInt(user, "id"), ten: s.tenants.Get(tname), role: role}
}

// owns reports whether p may mutate the video row: the cloud operator may
// always; otherwise the row must belong to p's tenant, and within a tenant
// a session user must be the uploader (or a tenant admin) while an API
// token owns everything in its tenant's namespace.
func (p *principal) owns(row videodb.Row) bool {
	if p.isOperator() {
		return true
	}
	rowTenant, _ := row["tenant"].(string)
	if rowTenant == "" {
		rowTenant = tenant.DefaultName
	}
	if rowTenant != p.tenantName() {
		return false
	}
	if p.userID != 0 {
		return row["uploader_id"] == p.userID || p.role == tenant.RoleAdmin
	}
	return true
}

// writeTenantError maps tenant-layer failures onto HTTP: quota and
// fair-share throttles become 429 with a Retry-After hint (the caller
// should back off and retry — the work is refused, not lost), bad tokens
// 401, anything else 400.
func (s *Site) writeTenantError(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, tenant.ErrQuotaExceeded), errors.Is(err, tenant.ErrThrottled):
		if secs, ok := tenant.RetryAfterSeconds(err); ok {
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		s.reg.Counter("http_429").Inc()
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return true
	case errors.Is(err, tenant.ErrBadToken):
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return true
	}
	return false
}

// admission carries an upload's quota reservations from intake to publish:
// estBytes storage (corrected to the exact stored size before any write)
// and srcSecs of the hourly transcode window.
type admission struct {
	ten      *tenant.Tenant
	estBytes int64
	srcSecs  float64
}

// release returns every reservation (a failed upload consumed nothing).
func (a *admission) release() {
	if a == nil || a.ten == nil {
		return
	}
	a.ten.ReleaseBytes(a.estBytes)
	a.ten.ReleaseTranscode(a.srcSecs)
	a.estBytes, a.srcSecs = 0, 0
}

// estimateStoredBytes bounds an upload's durable footprint from its source
// size: every rendition is stored whole plus segmented (roughly 2x each),
// with per-file header slack. The estimate is deliberately generous — it
// is corrected down to the exact byte count before publish — so admission
// can never under-reserve.
func (s *Site) estimateStoredBytes(srcBytes int) int64 {
	perRendition := 2 * (int64(srcBytes) + 64<<10)
	return perRendition * int64(1+len(s.renditions))
}

// admitUpload runs check-and-reserve quota admission for an upload by the
// context's tenant (default when anonymous). The returned admission must
// be released on failure; on publish the byte reservation is corrected to
// the exact stored size and kept (it is the tenant's stored usage).
func (s *Site) admitUpload(ten *tenant.Tenant, srcBytes int, srcSecs int) (*admission, error) {
	if ten == nil {
		ten = s.tenants.Default()
	}
	a := &admission{ten: ten, estBytes: s.estimateStoredBytes(srcBytes), srcSecs: float64(srcSecs)}
	if err := ten.ReserveTranscode(a.srcSecs); err != nil {
		s.tenantCounter("quota_denials", ten.Name()).Inc()
		return nil, err
	}
	if err := ten.ReserveBytes(a.estBytes); err != nil {
		ten.ReleaseTranscode(a.srcSecs)
		s.tenantCounter("quota_denials", ten.Name()).Inc()
		return nil, err
	}
	return a, nil
}

// maxTenantLabels bounds per-tenant instrument cardinality on this
// replica; tenants beyond it share an "other" label so a hostile token
// churn cannot grow the registry without bound.
const maxTenantLabels = 32

// tenantCounter returns the bounded per-tenant instrument
// "tenant_<name>_<what>".
func (s *Site) tenantCounter(what, tenantName string) *metrics.Counter {
	key := what + "\x00" + tenantName
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if s.tenantCounters == nil {
		s.tenantCounters = make(map[string]*metrics.Counter)
	}
	if c, ok := s.tenantCounters[key]; ok {
		return c
	}
	if len(s.tenantCounters) >= maxTenantLabels {
		tenantName = "other"
		key = what + "\x00other"
		if c, ok := s.tenantCounters[key]; ok {
			return c
		}
	}
	c := s.reg.Counter(fmt.Sprintf("tenant_%s_%s", tenantName, what))
	s.tenantCounters[key] = c
	return c
}

// ownerTenant resolves which tenant owns video id, for egress attribution.
// The answer is cached per replica so the warm segment path (edge-cache
// hit) costs one map lookup, not a database read.
func (s *Site) ownerTenant(id int64) string {
	s.tmu.Lock()
	name, ok := s.videoTenant[id]
	s.tmu.Unlock()
	if ok {
		return name
	}
	name = tenant.DefaultName
	if row, err := s.db.Get("videos", id); err == nil {
		if t, _ := row["tenant"].(string); t != "" {
			name = t
		}
	}
	s.tmu.Lock()
	if len(s.videoTenant) > 1<<16 { // bound the attribution cache
		s.videoTenant = make(map[int64]string)
	}
	s.videoTenant[id] = name
	s.tmu.Unlock()
	return name
}

// noteVideoTenant primes (or invalidates) the egress-attribution cache.
func (s *Site) noteVideoTenant(id int64, tenantName string) {
	s.tmu.Lock()
	if tenantName == "" {
		delete(s.videoTenant, id)
	} else {
		s.videoTenant[id] = tenantName
	}
	s.tmu.Unlock()
}

// meterEgress attributes n response-body bytes to the video owner's tenant
// in the usage ledger (the IaaS billing model: the account that published
// the content pays for its delivery).
func (s *Site) meterEgress(tenantName string, n int64) {
	if n <= 0 {
		return
	}
	if tenantName == "" {
		tenantName = tenant.DefaultName
	}
	s.tenants.Meter(tenantName, tenant.KindBytesEgressed, float64(n))
	s.tenantCounter("egress_bytes", tenantName).Add(n)
}

// meteredWriter counts response-body bytes for egress attribution while
// passing writes (and Flush, for streaming) straight through.
type meteredWriter struct {
	http.ResponseWriter
	n int64
}

func (m *meteredWriter) Write(b []byte) (int, error) {
	n, err := m.ResponseWriter.Write(b)
	m.n += int64(n)
	return n, err
}

func (m *meteredWriter) Flush() {
	if f, ok := m.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// resolveBearer authenticates an Authorization: Bearer header against the
// tenant registry. ok=false with a written response means the request was
// rejected (401); a request without the header passes through untouched.
func (s *Site) resolveBearer(w http.ResponseWriter, r *http.Request) (*http.Request, bool) {
	auth := r.Header.Get("Authorization")
	if auth == "" {
		return r, true
	}
	tok, found := strings.CutPrefix(auth, "Bearer ")
	if !found {
		http.Error(w, "unsupported Authorization scheme (use Bearer)", http.StatusUnauthorized)
		return r, false
	}
	ten, role, err := s.tenants.Authenticate(tok)
	if err != nil {
		s.reg.Counter("auth_failures").Inc()
		http.Error(w, "invalid or revoked API token", http.StatusUnauthorized)
		return r, false
	}
	s.tenantCounter("requests", ten.Name()).Inc()
	return r.WithContext(tenant.WithContext(r.Context(), ten, role)), true
}
