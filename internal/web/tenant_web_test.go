package web

import (
	"bytes"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/tenant"
	"videocloud/internal/video"
)

// newTenantSite builds a Site wired to a shared tenant registry, mirroring
// how core passes its registry into the web tier.
func newTenantSite(t testing.TB, reg *tenant.Registry) *Site {
	t.Helper()
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		t.Fatal(err)
	}
	site, err := New(Config{
		Store:         mount,
		Farm:          video.Farm{Nodes: []string{"dn0", "dn1"}},
		Target:        video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000},
		AdminUser:     "admin",
		AdminPassword: "secret",
		Tenants:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// tokenRequest issues req with an optional Bearer token and returns the
// response; the caller owns nothing (body is drained and closed).
func tokenRequest(t *testing.T, srv *httptest.Server, method, path, token string, body io.Reader, contentType string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	c := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// tokenUpload posts a generated clip to /upload under a Bearer token.
func tokenUpload(t *testing.T, srv *httptest.Server, token, title string, seconds int, seed uint64) *http.Response {
	t.Helper()
	data, err := video.Generate(video.Spec{
		Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 64_000,
	}, seconds, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("title", title)
	mw.WriteField("description", "tenant test clip")
	fw, _ := mw.CreateFormFile("video", "clip.avi")
	fw.Write(data)
	mw.Close()
	return tokenRequest(t, srv, "POST", "/upload", token, &buf, mw.FormDataContentType())
}

// TestWebRouteAuthMatrix walks every mutating web route through the three
// tenant failure classes: 401 (no or bad credentials), 403 (credentials
// that don't authorize the object), and 429 + Retry-After (quota refusals).
func TestWebRouteAuthMatrix(t *testing.T) {
	reg := tenant.NewRegistry()
	if _, err := reg.Create("acme", 2, tenant.Quota{TranscodeSecondsPerHour: 25}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("globex", 1, tenant.Quota{}); err != nil {
		t.Fatal(err)
	}
	acmeW, _ := reg.IssueToken("acme", tenant.RoleWriter)
	acmeR, _ := reg.IssueToken("acme", tenant.RoleReader)
	globexW, _ := reg.IssueToken("globex", tenant.RoleWriter)

	site := newTenantSite(t, reg)
	srv := httptest.NewServer(site)
	t.Cleanup(srv.Close)

	// 401: no credentials at all on every mutating route.
	if resp := tokenUpload(t, srv, "", "anon", 10, 1); resp.StatusCode != 401 {
		t.Fatalf("anonymous upload: got %d, want 401", resp.StatusCode)
	}
	for _, route := range []string{"/watch/1/edit", "/watch/1/delete"} {
		resp := tokenRequest(t, srv, "POST", route, "",
			strings.NewReader(url.Values{"title": {"x"}}.Encode()),
			"application/x-www-form-urlencoded")
		if resp.StatusCode != 401 {
			t.Fatalf("anonymous %s: got %d, want 401", route, resp.StatusCode)
		}
	}
	// 401: a junk Bearer token is rejected by the middleware before any
	// handler runs, so even a read route refuses it.
	for _, route := range []string{"/", "/upload"} {
		resp := tokenRequest(t, srv, "GET", route, "no-such-token", nil, "")
		if resp.StatusCode != 401 {
			t.Fatalf("junk token on %s: got %d, want 401", route, resp.StatusCode)
		}
	}

	// A writer token uploads into its own tenant's namespace.
	resp := tokenUpload(t, srv, acmeW, "acme clip", 10, 2)
	if resp.StatusCode != 303 {
		t.Fatalf("acme upload: got %d, want 303", resp.StatusCode)
	}
	watch := resp.Header.Get("Location") // /watch/<id>
	if !strings.HasPrefix(watch, "/watch/") {
		t.Fatalf("upload redirected to %q", watch)
	}

	// 403: read-only token on every mutating route.
	if resp := tokenUpload(t, srv, acmeR, "reader clip", 5, 3); resp.StatusCode != 403 {
		t.Fatalf("reader upload: got %d, want 403", resp.StatusCode)
	}
	for _, route := range []string{watch + "/edit", watch + "/delete"} {
		resp := tokenRequest(t, srv, "POST", route, acmeR,
			strings.NewReader(url.Values{"title": {"renamed"}}.Encode()),
			"application/x-www-form-urlencoded")
		if resp.StatusCode != 403 {
			t.Fatalf("reader %s: got %d, want 403", route, resp.StatusCode)
		}
	}
	// 403: another tenant's writer cannot touch acme's video.
	for _, route := range []string{watch + "/edit", watch + "/delete"} {
		resp := tokenRequest(t, srv, "POST", route, globexW,
			strings.NewReader(url.Values{"title": {"stolen"}}.Encode()),
			"application/x-www-form-urlencoded")
		if resp.StatusCode != 403 {
			t.Fatalf("cross-tenant %s: got %d, want 403", route, resp.StatusCode)
		}
	}

	// 429: acme's hourly transcode window (25s) has 15s left after the 10s
	// upload; a 20s clip must be refused with a Retry-After hint, and the
	// refusal must leave no row behind.
	resp = tokenUpload(t, srv, acmeW, "too much", 20, 4)
	if resp.StatusCode != 429 {
		t.Fatalf("over-quota upload: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	ten := reg.Get("acme")
	if got := ten.Reservations().QuotaDenials; got != 1 {
		t.Fatalf("quota denials = %d, want 1", got)
	}
	if rows, _ := site.db.Select("videos", "title", "too much"); len(rows) != 0 {
		t.Fatalf("refused upload left %d rows behind", len(rows))
	}

	// The globex writer's quota is unlimited, so it can still publish — one
	// tenant's refusal starves nobody else.
	if resp := tokenUpload(t, srv, globexW, "globex clip", 10, 5); resp.StatusCode != 303 {
		t.Fatalf("globex upload after acme 429: got %d, want 303", resp.StatusCode)
	}

	// The acme writer may edit and finally delete its own video, returning
	// the stored-byte reservation to the tenant.
	stored := ten.Reservations().StorageBytes
	if stored <= 0 {
		t.Fatalf("acme stored bytes = %d, want > 0 after publish", stored)
	}
	resp = tokenRequest(t, srv, "POST", watch+"/edit", acmeW,
		strings.NewReader(url.Values{"title": {"acme clip v2"}}.Encode()),
		"application/x-www-form-urlencoded")
	if resp.StatusCode != 303 {
		t.Fatalf("owner edit: got %d, want 303", resp.StatusCode)
	}
	resp = tokenRequest(t, srv, "POST", watch+"/delete", acmeW, nil, "")
	if resp.StatusCode != 303 {
		t.Fatalf("owner delete: got %d, want 303", resp.StatusCode)
	}
	if got := ten.Reservations().StorageBytes; got != 0 {
		t.Fatalf("acme stored bytes = %d after delete, want 0", got)
	}
	if u := reg.Ledger().Usage("acme"); u.BytesDeleted != u.BytesStored || u.BytesStored == 0 {
		t.Fatalf("ledger stored=%v deleted=%v, want equal and non-zero", u.BytesStored, u.BytesDeleted)
	}
}

// TestSessionUploadMetersDefaultTenant checks the pre-tenant surface is
// unchanged: a session user with no tenant column lands in the default
// tenant, whose quota is unlimited, and the ledger still accounts for it.
func TestSessionUploadMetersDefaultTenant(t *testing.T) {
	reg := tenant.NewRegistry()
	site := newTenantSite(t, reg)
	b := newBrowser(t, site)
	b.registerAndLogin("carol", "pw")
	b.upload("session clip", "no tenant column", 10, 7)
	u := reg.Ledger().Usage(tenant.DefaultName)
	if u.BytesStored == 0 || u.TranscodeSeconds != 10 {
		t.Fatalf("default-tenant usage = %+v, want stored>0 and 10 transcode seconds", u)
	}
	if got := reg.Default().Reservations().StorageBytes; got == 0 {
		t.Fatal("default tenant holds no storage reservation after session upload")
	}
}
