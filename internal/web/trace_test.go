package web

import (
	"bytes"
	"mime/multipart"
	"net/http"
	"testing"
	"time"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/trace"
	"videocloud/internal/video"
)

// tracedAsyncSite is asyncSite plus an always-sampling tracer, so every
// request yields a stored trace.
func tracedAsyncSite(t testing.TB, workers, queueCap int) (*Site, *trace.Tracer) {
	t.Helper()
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Options{Enabled: true})
	site, err := New(Config{
		Store:             mount,
		Farm:              video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target:            video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000},
		Renditions:        []video.Spec{{Codec: video.H264, Res: video.R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 50_000}},
		AdminUser:         "admin",
		AdminPassword:     "secret",
		TranscodeWorkers:  workers,
		TranscodeQueueCap: queueCap,
		Tracer:            tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site, tracer
}

// findTrace polls both rings for the first completed trace with the given
// root name. The trace flushes only when its last async span ends, which can
// trail DrainTranscodes by a scheduler beat.
func findTrace(t *testing.T, tracer *trace.Tracer, root string) *trace.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, tr := range append(tracer.Retained(), tracer.Traces()...) {
			if tr.Root == root {
				return tr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no completed trace with root %q (stats %+v)", root, tracer.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func annotation(sd trace.SpanData, key string) string {
	for _, a := range sd.Annotations {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTraceSpansAsyncUploadPipeline drives a real HTTP upload through the
// async queue and asserts the resulting trace is one connected tree spanning
// every layer: the web root, the queue.job span re-parented across the
// enqueue boundary, the farm's conversion/task spans, and the HDFS writes
// underneath publish. Run under -race (make tier1) this also gates the
// tracer's cross-goroutine span handoff.
func TestTraceSpansAsyncUploadPipeline(t *testing.T) {
	site, tracer := tracedAsyncSite(t, 2, 8)
	b := newBrowser(t, site)
	b.registerAndLogin("tess", "pw")

	// Post the upload without following the redirect so the captured
	// X-Request-ID belongs to the upload request, not the watch page after.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("title", "traced upload")
	mw.WriteField("description", "observability fixture")
	fw, _ := mw.CreateFormFile("video", "clip.avi")
	fw.Write(testUploadMedia(t, 10, 77))
	mw.Close()
	req, _ := http.NewRequest("POST", b.srv.URL+"/upload", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	noRedirect := &http.Client{
		Jar:           b.c.Jar,
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	resp, err := noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("upload status = %d, want 303", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("upload response carries no X-Request-ID")
	}

	site.DrainTranscodes()
	tr := findTrace(t, tracer, "web.upload")

	if tr.Open != 0 || tr.Dropped != 0 {
		t.Fatalf("trace open=%d dropped=%d, want 0/0", tr.Open, tr.Dropped)
	}
	root, ok := tr.RootSpan()
	if !ok {
		t.Fatal("trace has no root span")
	}
	if got := annotation(root, "request_id"); got != rid {
		t.Fatalf("root request_id annotation %q != X-Request-ID header %q", got, rid)
	}

	// Parentage must close: every non-root span's parent is in the trace.
	ids := make(map[uint64]bool, len(tr.Spans))
	for _, sd := range tr.Spans {
		ids[sd.SpanID] = true
	}
	for _, sd := range tr.Spans {
		if sd.TraceID != tr.TraceID {
			t.Fatalf("span %s carries trace id %x, want %x", sd.Name, sd.TraceID, tr.TraceID)
		}
		if sd.ParentID == 0 {
			if sd.SpanID != root.SpanID {
				t.Fatalf("second root span %s in trace", sd.Name)
			}
			continue
		}
		if !ids[sd.ParentID] {
			t.Fatalf("span %s is orphaned: parent %x not in trace", sd.Name, sd.ParentID)
		}
	}

	// The one trace must span every layer of the pipeline.
	layers := make(map[string]bool)
	names := make(map[string]bool)
	for _, sd := range tr.Spans {
		layers[sd.Layer] = true
		names[sd.Name] = true
	}
	for _, layer := range []string{"web", "queue", "farm", "hdfs", "db"} {
		if !layers[layer] {
			t.Fatalf("trace is missing layer %q (saw %v)", layer, layers)
		}
	}
	for _, name := range []string{"web.upload", "queue.job", "farm.convert", "farm.task", "hdfs.write_file", "db.publish"} {
		if !names[name] {
			t.Fatalf("trace is missing span %q", name)
		}
	}

	// The queue.job span must hang off the web root (Reparent preserved the
	// linkage across the enqueue boundary).
	for _, sd := range tr.Spans {
		if sd.Name == "queue.job" && sd.ParentID != root.SpanID {
			t.Fatalf("queue.job parent %x, want web root %x", sd.ParentID, root.SpanID)
		}
	}
}

// TestTraceDisabledSiteUnchanged pins the zero-cost contract: a site built
// without a tracer still serves uploads, emits request IDs, and records no
// traces anywhere.
func TestTraceDisabledSiteUnchanged(t *testing.T) {
	site := asyncSite(t, 1, 4, nil)
	b := newBrowser(t, site)
	b.registerAndLogin("uma", "pw")
	b.upload("untraced", "no tracer configured", 8, 78)
	site.DrainTranscodes()
	if tr := site.Tracer(); tr != nil {
		t.Fatalf("site without Config.Tracer has tracer %v", tr)
	}
}
