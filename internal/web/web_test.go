package web

import (
	"bytes"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/stream"
	"videocloud/internal/video"
)

// browser is a cookie-keeping test client (a user's web browser).
type browser struct {
	t   *testing.T
	c   *http.Client
	srv *httptest.Server
}

func newSite(t testing.TB) (*Site, *hdfs.Cluster) {
	t.Helper()
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		t.Fatal(err)
	}
	site, err := New(Config{
		Store: mount,
		Farm:  video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		// Small bitrate keeps test media tiny.
		Target:        video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000},
		AdminUser:     "admin",
		AdminPassword: "secret",
	})
	if err != nil {
		t.Fatal(err)
	}
	return site, cluster
}

func newBrowser(t *testing.T, site *Site) *browser {
	t.Helper()
	srv := httptest.NewServer(site)
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	return &browser{t: t, c: &http.Client{Jar: jar}, srv: srv}
}

func (b *browser) get(path string) (*http.Response, string) {
	b.t.Helper()
	resp, err := b.c.Get(b.srv.URL + path)
	if err != nil {
		b.t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func (b *browser) post(path string, form url.Values) (*http.Response, string) {
	b.t.Helper()
	resp, err := b.c.PostForm(b.srv.URL+path, form)
	if err != nil {
		b.t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// registerAndLogin walks the register -> verify-email -> login flow.
func (b *browser) registerAndLogin(user, pass string) {
	b.t.Helper()
	resp, err := b.c.PostForm(b.srv.URL+"/register", url.Values{
		"username": {user}, "password": {pass}, "email": {user + "@example.com"},
	})
	if err != nil {
		b.t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	link := resp.Header.Get("X-Verification-Link")
	if link == "" {
		b.t.Fatal("no verification link emitted")
	}
	if r, _ := b.get(link); r.StatusCode != 200 {
		b.t.Fatalf("verify status %d", r.StatusCode)
	}
	if r, body := b.post("/login", url.Values{"username": {user}, "password": {pass}}); r.StatusCode != 200 {
		b.t.Fatalf("login failed: %d %s", r.StatusCode, body)
	}
}

// upload posts a generated media file.
func (b *browser) upload(title, desc string, seconds int, seed uint64) string {
	b.t.Helper()
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 64_000}
	data, err := video.Generate(src, seconds, seed)
	if err != nil {
		b.t.Fatal(err)
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("title", title)
	mw.WriteField("description", desc)
	fw, _ := mw.CreateFormFile("video", "clip.avi")
	fw.Write(data)
	mw.Close()
	req, _ := http.NewRequest("POST", b.srv.URL+"/upload", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := b.c.Do(req)
	if err != nil {
		b.t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 200 {
		b.t.Fatalf("upload status %d", resp.StatusCode)
	}
	// After redirects we should be on the watch page.
	loc := resp.Request.URL.Path
	if !strings.HasPrefix(loc, "/watch/") {
		b.t.Fatalf("upload landed on %s", loc)
	}
	return loc
}

func TestFullUserJourney(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)

	// Figure 17: home page with a search box.
	if resp, body := b.get("/"); resp.StatusCode != 200 || !strings.Contains(body, "search videos") {
		t.Fatalf("home: %d", resp.StatusCode)
	}
	// Figures 19-21: register, verify, log in.
	b.registerAndLogin("alice", "hunter2")
	if _, body := b.get("/"); !strings.Contains(body, "alice") {
		t.Fatal("session not visible on home page")
	}
	// Figure 22: upload.
	watch := b.upload("Nobody dance cover", "my cover of the famous song", 20, 99)
	// Figure 23: player page with the streaming link and time bar.
	_, body := b.get(watch)
	for _, want := range []string{"Nobody dance cover", "/stream/", "timebar", "Facebook", "Plurk", "Twitter"} {
		if !strings.Contains(body, want) {
			t.Fatalf("watch page missing %q", want)
		}
	}
	// Figure 18: search finds it.
	_, body = b.get("/search?q=nobody")
	if !strings.Contains(body, "Nobody dance cover") {
		t.Fatal("search missed the upload")
	}
	// Comment.
	if resp, _ := b.post(watch+"/comment", url.Values{"text": {"great video!"}}); resp.StatusCode != 200 {
		t.Fatalf("comment status %d", resp.StatusCode)
	}
	_, body = b.get(watch)
	if !strings.Contains(body, "great video!") || !strings.Contains(body, "alice") {
		t.Fatal("comment not shown")
	}
	// Logout ends the session.
	b.post("/logout", nil)
	if _, body := b.get("/"); strings.Contains(body, "signed in as") {
		t.Fatal("still signed in after logout")
	}
}

func TestStreamingWithSeeks(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("bob", "pw")
	watch := b.upload("Long film", "a long one", 60, 5)
	id := strings.TrimPrefix(watch, "/watch/")

	p := &stream.Player{HTTP: b.c, ChunkBytes: 32 << 10}
	rep, err := p.Play(b.srv.URL+"/stream/"+id, []float64{0.5, 0.95}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeks != 2 || rep.Size == 0 {
		t.Fatalf("report = %+v", rep)
	}
	// The streamed bytes are the converted H.264 file.
	head, err := p.FetchRange(b.srv.URL+"/stream/"+id, 0, 1023)
	if err != nil {
		t.Fatal(err)
	}
	info, err := video.Probe(append(head, make([]byte, 0)...))
	// Probe needs the whole file for GOP checks; fetch it all.
	if err != nil {
		full, ferr := p.FetchRange(b.srv.URL+"/stream/"+id, 0, rep.Size-1)
		if ferr != nil {
			t.Fatal(ferr)
		}
		info, err = video.Probe(full)
		if err != nil {
			t.Fatal(err)
		}
	}
	if info.Spec.Codec != video.H264 || info.Spec.Res != video.R720p {
		t.Fatalf("streamed spec = %+v", info.Spec)
	}
}

func TestUploadRequiresLoginAndValidMedia(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	// Anonymous upload rejected.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("title", "x")
	fw, _ := mw.CreateFormFile("video", "x.avi")
	fw.Write([]byte("not a video"))
	mw.Close()
	req, _ := http.NewRequest("POST", b.srv.URL+"/upload", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, _ := b.c.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous upload status %d", resp.StatusCode)
	}
	// Garbage media rejected for a logged-in user.
	b.registerAndLogin("carol", "pw")
	var buf2 bytes.Buffer
	mw = multipart.NewWriter(&buf2)
	mw.WriteField("title", "junk")
	fw, _ = mw.CreateFormFile("video", "x.avi")
	fw.Write([]byte("not a video"))
	mw.Close()
	req, _ = http.NewRequest("POST", b.srv.URL+"/upload", &buf2)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, _ = b.c.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk upload status %d", resp.StatusCode)
	}
}

func TestLoginGuards(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	// Unverified user cannot log in.
	resp, err := b.c.PostForm(b.srv.URL+"/register", url.Values{
		"username": {"dave"}, "password": {"pw"}, "email": {"d@x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, body := b.post("/login", url.Values{"username": {"dave"}, "password": {"pw"}}); !strings.Contains(body, "not verified") {
		t.Fatal("unverified login allowed")
	}
	// Wrong password.
	if _, body := b.post("/login", url.Values{"username": {"admin"}, "password": {"nope"}}); !strings.Contains(body, "wrong password") {
		t.Fatal("wrong password accepted")
	}
	// Duplicate registration.
	if _, body := b.post("/register", url.Values{"username": {"dave"}, "password": {"x"}}); !strings.Contains(body, "unique") {
		t.Fatalf("duplicate username accepted: %s", body)
	}
}

func TestEditDeleteAuthorization(t *testing.T) {
	site, _ := newSite(t)
	owner := newBrowser(t, site)
	owner.registerAndLogin("erin", "pw")
	watch := owner.upload("My film", "desc", 10, 1)

	// A different user cannot edit or delete.
	other := newBrowser(t, site)
	other.registerAndLogin("frank", "pw")
	if resp, _ := other.post(watch+"/edit", url.Values{"title": {"hax"}}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("foreign edit status %d", resp.StatusCode)
	}
	if resp, _ := other.post(watch+"/delete", nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("foreign delete status %d", resp.StatusCode)
	}
	// The owner can edit; search follows the change.
	if resp, _ := owner.post(watch+"/edit", url.Values{"title": {"Renamed film"}, "description": {"new"}}); resp.StatusCode != 200 {
		t.Fatalf("edit status %d", resp.StatusCode)
	}
	if _, body := owner.get("/search?q=renamed"); !strings.Contains(body, "Renamed film") {
		t.Fatal("index not updated after edit")
	}
	// The old description's unique word no longer matches anything.
	if _, body := owner.get("/search?q=desc"); strings.Contains(body, "/watch/") {
		t.Fatal("stale index entry after edit")
	}
	// Owner deletes; page and search entry vanish.
	if resp, _ := owner.post(watch+"/delete", nil); resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if resp, _ := owner.get(watch); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("watch after delete: %d", resp.StatusCode)
	}
	if _, body := owner.get("/search?q=renamed"); strings.Contains(body, "/watch/") {
		t.Fatal("deleted video still in search")
	}
}

func TestReportAndAdminModeration(t *testing.T) {
	site, _ := newSite(t)
	up := newBrowser(t, site)
	up.registerAndLogin("gina", "pw")
	watch := up.upload("Bad film", "spam", 10, 2)

	viewer := newBrowser(t, site)
	viewer.post(watch+"/report", nil)
	viewer.post(watch+"/report", nil)

	admin := newBrowser(t, site)
	if r, _ := admin.post("/login", url.Values{"username": {"admin"}, "password": {"secret"}}); r.StatusCode != 200 {
		t.Fatal("admin login failed")
	}
	_, body := admin.get("/admin")
	if !strings.Contains(body, "Bad film") || !strings.Contains(body, "2 reports") {
		t.Fatalf("admin page missing report info:\n%s", body)
	}
	// Admin blocks gina; her session dies and she cannot log back in.
	if resp, _ := admin.post("/admin/block", url.Values{"user": {"gina"}, "blocked": {"true"}}); resp.StatusCode != 200 {
		t.Fatalf("block status %d", resp.StatusCode)
	}
	if resp, _ := up.get("/my"); resp.StatusCode != 200 || resp.Request.URL.Path != "/login" {
		t.Fatalf("blocked user session still live (landed on %s)", resp.Request.URL.Path)
	}
	if _, body := up.post("/login", url.Values{"username": {"gina"}, "password": {"pw"}}); !strings.Contains(body, "blocked") {
		t.Fatal("blocked user logged in")
	}
	// Admin can delete the reported film.
	if resp, _ := admin.post(watch+"/delete", nil); resp.StatusCode != 200 {
		t.Fatalf("admin delete status %d", resp.StatusCode)
	}
	// Unblock restores access.
	admin.post("/admin/block", url.Values{"user": {"gina"}, "blocked": {"false"}})
	if r, _ := up.post("/login", url.Values{"username": {"gina"}, "password": {"pw"}}); r.StatusCode != 200 {
		t.Fatal("unblocked user cannot log in")
	}
}

func TestMyVideosAndViews(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("henry", "pw")
	w1 := b.upload("First", "one", 10, 3)
	b.upload("Second", "two", 10, 4)
	_, body := b.get("/my")
	if !strings.Contains(body, "First") || !strings.Contains(body, "Second") {
		t.Fatalf("my videos missing uploads:\n%s", body)
	}
	// View counter increments: upload's redirect counted view 1, then
	// three more visits display 4.
	b.get(w1)
	b.get(w1)
	_, body = b.get(w1)
	if !strings.Contains(body, "4 views") {
		t.Fatalf("views not counted:\n%s", body)
	}
}

func TestSearchEnginesAgree(t *testing.T) {
	site, _ := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("ivy", "pw")
	b.upload("Cloud computing lecture", "kvm and opennebula", 10, 6)
	b.upload("Cooking show", "pasta", 10, 7)
	_, indexBody := b.get("/search?q=cloud")
	_, scanBody := b.get("/search?q=cloud&engine=scan")
	for _, body := range []string{indexBody, scanBody} {
		if !strings.Contains(body, "Cloud computing lecture") || strings.Contains(body, "Cooking show") {
			t.Fatalf("engine results wrong:\n%s", body)
		}
	}
}

func TestUploadsLandInHDFS(t *testing.T) {
	site, cluster := newSite(t)
	b := newBrowser(t, site)
	b.registerAndLogin("jack", "pw")
	watch := b.upload("Replicated", "stored in hdfs", 10, 8)
	id := strings.TrimPrefix(watch, "/watch/")
	blocks, err := cluster.Client("").BlockLocations(fmt.Sprintf("/site/videos/%s.vcf", id))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 || len(blocks[0].Locations) != 2 {
		t.Fatalf("upload not replicated in HDFS: %+v", blocks)
	}
	if site.Metrics().Counter("uploads").Value() != 1 {
		t.Fatal("upload not counted")
	}
}
