package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"videocloud/internal/stream"
)

// Segment-aware load: where RunLoad's viewers fetch progressive Range
// windows of whole files, RunEdgeLoad's viewers are adaptive-bitrate
// sessions over the playlist/segment endpoints — the workload the edge-cache
// tier exists for. Each virtual viewer picks a title by Zipf popularity,
// runs a full ABR session through stream.ABRPlayer, and the aggregate
// report carries the delivery tier's quality-of-experience signal: rebuffer
// time against play time, rendition switches, and live-edge lag.

// EdgeLoadOptions configures one RunEdgeLoad call.
type EdgeLoadOptions struct {
	// BaseURL is the serving tier's root (one Site or an ingress fleet).
	BaseURL string
	// VideoIDs is the catalog, ordered most- to least-popular.
	VideoIDs []int64
	// Viewers is the closed-loop concurrency; Sessions is the total number
	// of ABR sessions to run across them (defaults to Viewers).
	Viewers  int
	Sessions int
	// ZipfS is the popularity exponent (defaults to 1.1 when 0 — segment
	// fan-out is the heavy-skew regime).
	ZipfS float64
	// MaxSegmentsPerSession bounds each session; 0 plays titles to the end.
	MaxSegmentsPerSession int
	// Seed makes title choice deterministic.
	Seed int64
}

// EdgeLoadReport aggregates what the ABR viewers experienced.
type EdgeLoadReport struct {
	Sessions int
	Errors   int
	Segments int
	Bytes    int64
	// PlayedSeconds and RebufferSeconds sum over sessions; their ratio is
	// the tier's quality-of-experience headline.
	PlayedSeconds   float64
	RebufferSeconds float64
	Switches        int
	// EndReached counts sessions that consumed their playlist's end marker.
	EndReached int
	// MaxLiveLag is the worst live-edge lag any session saw, in segments.
	MaxLiveLag int
	Elapsed    time.Duration
}

// RebufferRatio is aggregate stall time over aggregate session time.
func (r *EdgeLoadReport) RebufferRatio() float64 {
	total := r.PlayedSeconds + r.RebufferSeconds
	if total <= 0 {
		return 0
	}
	return r.RebufferSeconds / total
}

// RunEdgeLoad drives Viewers concurrent ABR players against BaseURL,
// Sessions sessions in total, titles picked per session by Zipf popularity.
func RunEdgeLoad(o EdgeLoadOptions) *EdgeLoadReport {
	if o.Viewers < 1 || len(o.VideoIDs) == 0 {
		panic(fmt.Sprintf("workload: bad edge load options %+v", o))
	}
	if o.Sessions == 0 {
		o.Sessions = o.Viewers
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.1
	}
	zipf := NewZipf(len(o.VideoIDs), o.ZipfS)
	rep := &EdgeLoadReport{}
	var mu sync.Mutex
	work := make(chan int64, o.Sessions)
	rng := rand.New(rand.NewSource(o.Seed))
	for i := 0; i < o.Sessions; i++ {
		work <- o.VideoIDs[zipf.Pick(rng)]
	}
	close(work)

	start := time.Now()
	var wg sync.WaitGroup
	for v := 0; v < o.Viewers; v++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := &stream.ABRPlayer{MaxSegments: o.MaxSegmentsPerSession}
			for id := range work {
				r, err := p.Play(fmt.Sprintf("%s/playlist/%d", o.BaseURL, id))
				mu.Lock()
				rep.Sessions++
				if err != nil {
					rep.Errors++
				}
				if r != nil {
					rep.Segments += r.Segments
					rep.Bytes += r.Bytes
					rep.PlayedSeconds += r.PlayedSeconds
					rep.RebufferSeconds += r.RebufferSeconds
					rep.Switches += r.Switches
					if r.EndReached {
						rep.EndReached++
					}
					if r.MaxLiveLag > rep.MaxLiveLag {
						rep.MaxLiveLag = r.MaxLiveLag
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep
}

// RunLiveViewers points Viewers concurrent ABR sessions at one live
// channel and lets them follow the live edge until the channel ends (or a
// session fails). The aggregate report's MaxLiveLag and EndReached are the
// staleness signal: every viewer should ride within a bounded distance of
// the newest segment and see the end marker.
func RunLiveViewers(baseURL string, channelID int64, viewers int, poll time.Duration) *EdgeLoadReport {
	if viewers < 1 {
		panic("workload: RunLiveViewers needs at least one viewer")
	}
	rep := &EdgeLoadReport{}
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for v := 0; v < viewers; v++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := &stream.ABRPlayer{PollInterval: poll}
			r, err := p.Play(fmt.Sprintf("%s/playlist/%d", baseURL, channelID))
			mu.Lock()
			defer mu.Unlock()
			rep.Sessions++
			if err != nil {
				rep.Errors++
			}
			if r != nil {
				rep.Segments += r.Segments
				rep.Bytes += r.Bytes
				rep.PlayedSeconds += r.PlayedSeconds
				rep.RebufferSeconds += r.RebufferSeconds
				if r.EndReached {
					rep.EndReached++
				}
				if r.MaxLiveLag > rep.MaxLiveLag {
					rep.MaxLiveLag = r.MaxLiveLag
				}
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	return rep
}
