package workload

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"videocloud/internal/metrics"
)

// This file is the closed-loop half of the package: where workload.Generate
// produces traces for simulation, RunLoad drives real HTTP against a running
// serving tier (one Site or an ingress fleet) and measures what viewers
// actually experienced. Closed-loop means each virtual viewer issues its next
// request only after the previous one completes — the natural backpressure of
// a video player — so measured latency and throughput reflect the server's
// capacity, not an open-loop generator's queue.

// LoadOptions configures one RunLoad call.
type LoadOptions struct {
	// BaseURL is the serving tier's root, e.g. "http://127.0.0.1:43210".
	BaseURL string
	// VideoIDs is the catalog, ordered most- to least-popular: the Zipf
	// pick indexes into it directly.
	VideoIDs []int64
	// Viewers is the closed-loop concurrency (number of virtual players).
	Viewers int
	// Loops is how many home→watch→stream iterations each viewer runs.
	Loops int
	// ZipfS is the popularity exponent (defaults to 0.9 when 0).
	ZipfS float64
	// FlashVideo, when non-zero, is a video id that FlashFrac of all picks
	// are redirected to — a flash crowd on one title.
	FlashVideo int64
	// FlashFrac is the fraction (0-1] of picks forced onto FlashVideo.
	FlashFrac float64
	// StreamChunk is the Range window per stream request in bytes
	// (defaults to 256 KiB when 0), and ChunksPerView is how many
	// sequential windows one view fetches (defaults to 4 when 0).
	StreamChunk   int
	ChunksPerView int
	// Seed makes the viewer behaviour deterministic.
	Seed int64
}

// LoadReport is what the viewers measured.
type LoadReport struct {
	Requests int64
	Errors   int64
	// StreamBytes is total video payload received across all viewers.
	StreamBytes int64
	Elapsed     time.Duration
	// Home and Stream are client-observed latency distributions, in
	// seconds, for GET / and for each stream Range request.
	Home   metrics.Snapshot
	Stream metrics.Snapshot
}

// ThroughputBps is the aggregate video egress rate the fleet sustained.
func (r LoadReport) ThroughputBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.StreamBytes) / r.Elapsed.Seconds()
}

// RunLoad drives Viewers concurrent closed-loop players against BaseURL.
// Each loop iteration is one session: load the home page, pick a title by
// Zipf popularity (or join the flash crowd), load its watch page, then fetch
// ChunksPerView sequential Range windows of its stream. Deterministic for a
// given seed up to network scheduling.
func RunLoad(o LoadOptions) LoadReport {
	if o.Viewers < 1 || o.Loops < 1 || len(o.VideoIDs) == 0 {
		panic(fmt.Sprintf("workload: bad load options %+v", o))
	}
	if o.ZipfS == 0 {
		o.ZipfS = 0.9
	}
	if o.StreamChunk == 0 {
		o.StreamChunk = 256 << 10
	}
	if o.ChunksPerView == 0 {
		o.ChunksPerView = 4
	}
	zipf := NewZipf(len(o.VideoIDs), o.ZipfS)
	homeLat := metrics.NewHistogram()
	streamLat := metrics.NewHistogram()
	var requests, errors, streamBytes atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for v := 0; v < o.Viewers; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(v)*7919))
			client := &http.Client{}
			for i := 0; i < o.Loops; i++ {
				// Home page.
				t0 := time.Now()
				err := discardGet(client, o.BaseURL+"/", "")
				homeLat.ObserveDuration(time.Since(t0))
				requests.Add(1)
				if err != nil {
					errors.Add(1)
				}

				// Title choice: flash crowd or Zipf.
				id := o.VideoIDs[zipf.Pick(rng)]
				if o.FlashVideo != 0 && rng.Float64() < o.FlashFrac {
					id = o.FlashVideo
				}

				// Watch page.
				err = discardGet(client, fmt.Sprintf("%s/watch/%d", o.BaseURL, id), "")
				requests.Add(1)
				if err != nil {
					errors.Add(1)
				}

				// Stream: sequential Range windows, as a player buffering
				// ahead would issue them.
				for c := 0; c < o.ChunksPerView; c++ {
					lo := c * o.StreamChunk
					rangeHdr := fmt.Sprintf("bytes=%d-%d", lo, lo+o.StreamChunk-1)
					t0 = time.Now()
					n, serr := rangeGet(client, fmt.Sprintf("%s/stream/%d", o.BaseURL, id), rangeHdr)
					streamLat.ObserveDuration(time.Since(t0))
					requests.Add(1)
					streamBytes.Add(n)
					if serr != nil {
						errors.Add(1)
						break // past EOF or server trouble: end this view
					}
				}
			}
		}(v)
	}
	wg.Wait()

	return LoadReport{
		Requests:    requests.Load(),
		Errors:      errors.Load(),
		StreamBytes: streamBytes.Load(),
		Elapsed:     time.Since(start),
		Home:        homeLat.Snapshot(),
		Stream:      streamLat.Snapshot(),
	}
}

// RampPhase is one step of a diurnal ramp: the hour selects the wave's rate,
// which RunRamp turns into closed-loop concurrency.
type RampPhase struct {
	Hour    float64
	Viewers int
	Report  LoadReport
}

// RunRamp walks the diurnal wave at the given hours, scaling viewer
// concurrency in proportion to the wave's rate (peak hour = maxViewers,
// never below 1), and runs one closed-loop measurement per phase. It models
// a day of demand against a fixed fleet — the trace E14 and capacity
// planning read.
func RunRamp(o LoadOptions, d Diurnal, hours []float64, maxViewers int) []RampPhase {
	if maxViewers < 1 || len(hours) == 0 {
		panic(fmt.Sprintf("workload: bad ramp (max %d viewers, %d hours)", maxViewers, len(hours)))
	}
	peak := d.Rate(time.Duration(d.PeakHour * float64(time.Hour)))
	out := make([]RampPhase, 0, len(hours))
	for _, h := range hours {
		rate := d.Rate(time.Duration(h * float64(time.Hour)))
		viewers := int(float64(maxViewers) * rate / peak)
		if viewers < 1 {
			viewers = 1
		}
		po := o
		po.Viewers = viewers
		po.Seed = o.Seed + int64(h*3600)
		phase := RampPhase{Hour: h, Viewers: viewers, Report: RunLoad(po)}
		out = append(out, phase)
	}
	return out
}

// discardGet fetches url, drains the body, and returns an error on transport
// failure or non-2xx status.
func discardGet(client *http.Client, url, rangeHdr string) error {
	_, err := rangeGet(client, url, rangeHdr)
	return err
}

// rangeGet fetches url with an optional Range header and returns the number
// of body bytes received.
func rangeGet(client *http.Client, url, rangeHdr string) (int64, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return 0, err
	}
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return n, fmt.Errorf("status %d for %s", resp.StatusCode, url)
	}
	return n, nil
}
