package workload

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBurstOverlay verifies the flash-crowd shape: an instantaneous step up
// at Start, factored rate for exactly Duration, instantaneous step back,
// compounding when bursts overlap, and no daily recurrence (raw offset, not
// time-of-day).
func TestBurstOverlay(t *testing.T) {
	base := Diurnal{Base: 2, PeakFactor: 8, PeakHour: 21}
	d := base
	d.Bursts = []Burst{
		{Start: 10 * time.Hour, Duration: 30 * time.Minute, Factor: 20},
		{Start: 10*time.Hour + 15*time.Minute, Duration: 5 * time.Minute, Factor: 2},
	}

	eq := func(got, want float64, what string) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("%s: rate %.4f, want %.4f", what, got, want)
		}
	}

	// Outside every window the overlay is invisible.
	eq(d.Rate(9*time.Hour), base.Rate(9*time.Hour), "before burst")
	eq(d.Rate(11*time.Hour), base.Rate(11*time.Hour), "after burst")

	// Instantaneous leading edge: one nanosecond before is unboosted,
	// the start instant itself is fully boosted.
	edge := 10 * time.Hour
	eq(d.Rate(edge-time.Nanosecond), base.Rate(edge-time.Nanosecond), "ns before edge")
	eq(d.Rate(edge), 20*base.Rate(edge), "at edge")

	// Trailing edge is exclusive: boosted at end-1ns, off at end.
	end := edge + 30*time.Minute
	eq(d.Rate(end-time.Nanosecond), 20*base.Rate(end-time.Nanosecond), "ns before end")
	eq(d.Rate(end), base.Rate(end), "at end")

	// Overlap compounds: 20 × 2 where both windows cover t.
	mid := edge + 16*time.Minute
	eq(d.Rate(mid), 40*base.Rate(mid), "overlapping bursts")

	// No daily recurrence: 34h is 10h time-of-day but outside the raw
	// window, so only the sinusoid (which does wrap) applies.
	eq(d.Rate(34*time.Hour), base.Rate(34*time.Hour), "next day")
}

func TestBurstValidation(t *testing.T) {
	d := Diurnal{Base: 1, PeakFactor: 2, PeakHour: 20,
		Bursts: []Burst{{Start: 0, Duration: time.Hour, Factor: 0}}}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-factor burst must panic")
		}
	}()
	d.Rate(0)
}

// fakeTier is a minimal serving tier: / and /watch respond with HTML,
// /stream honours Range over a fixed-size body.
type fakeTier struct {
	size     int
	streamed atomic.Int64
	flashHit atomic.Int64
}

func (f *fakeTier) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/":
		fmt.Fprint(w, "<html>home</html>")
	case strings.HasPrefix(r.URL.Path, "/watch/"):
		fmt.Fprint(w, "<html>watch</html>")
	case strings.HasPrefix(r.URL.Path, "/stream/"):
		if strings.HasSuffix(r.URL.Path, "/99") {
			f.flashHit.Add(1)
		}
		var lo, hi int
		if n, _ := fmt.Sscanf(r.Header.Get("Range"), "bytes=%d-%d", &lo, &hi); n == 2 && lo < f.size {
			if hi >= f.size {
				hi = f.size - 1
			}
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", lo, hi, f.size))
			w.WriteHeader(http.StatusPartialContent)
			w.Write(make([]byte, hi-lo+1))
			f.streamed.Add(int64(hi - lo + 1))
			return
		}
		http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
	default:
		http.NotFound(w, r)
	}
}

func TestRunLoadClosedLoop(t *testing.T) {
	tier := &fakeTier{size: 1 << 20}
	srv := httptest.NewServer(tier)
	defer srv.Close()

	rep := RunLoad(LoadOptions{
		BaseURL:       srv.URL,
		VideoIDs:      []int64{1, 2, 3, 4, 5},
		Viewers:       4,
		Loops:         5,
		StreamChunk:   64 << 10,
		ChunksPerView: 2,
		Seed:          42,
	})
	// 4 viewers × 5 loops × (home + watch + 2 chunks) = 80 requests.
	if rep.Requests != 80 {
		t.Fatalf("requests %d, want 80", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors against a healthy tier", rep.Errors)
	}
	wantBytes := int64(4 * 5 * 2 * (64 << 10))
	if rep.StreamBytes != wantBytes {
		t.Fatalf("stream bytes %d, want %d", rep.StreamBytes, wantBytes)
	}
	if rep.StreamBytes != tier.streamed.Load() {
		t.Fatalf("client counted %d bytes, server sent %d", rep.StreamBytes, tier.streamed.Load())
	}
	if rep.ThroughputBps() <= 0 {
		t.Fatal("no throughput computed")
	}
	if rep.Home.Count != 20 || rep.Stream.Count != 40 {
		t.Fatalf("latency counts home=%d stream=%d, want 20/40", rep.Home.Count, rep.Stream.Count)
	}
	if rep.Home.P99 <= 0 || rep.Stream.P99 <= 0 {
		t.Fatal("zero p99 latency recorded")
	}
}

func TestRunLoadFlashCrowd(t *testing.T) {
	tier := &fakeTier{size: 1 << 20}
	srv := httptest.NewServer(tier)
	defer srv.Close()

	RunLoad(LoadOptions{
		BaseURL:       srv.URL,
		VideoIDs:      []int64{1, 2, 3, 4, 5},
		Viewers:       4,
		Loops:         10,
		ChunksPerView: 1,
		StreamChunk:   4 << 10,
		FlashVideo:    99,
		FlashFrac:     1.0,
		Seed:          7,
	})
	// Every stream request joined the crowd on video 99.
	if got := tier.flashHit.Load(); got != 40 {
		t.Fatalf("flash video received %d of 40 stream requests", got)
	}
}

func TestRunRampScalesViewers(t *testing.T) {
	tier := &fakeTier{size: 1 << 20}
	srv := httptest.NewServer(tier)
	defer srv.Close()

	d := Diurnal{Base: 2, PeakFactor: 8, PeakHour: 21}
	phases := RunRamp(LoadOptions{
		BaseURL:       srv.URL,
		VideoIDs:      []int64{1, 2, 3},
		Loops:         2,
		ChunksPerView: 1,
		StreamChunk:   4 << 10,
		Seed:          1,
	}, d, []float64{9, 15, 21}, 8)

	if len(phases) != 3 {
		t.Fatalf("%d phases, want 3", len(phases))
	}
	// Trough (9h, 12h off peak) gets 1 viewer, peak gets all 8,
	// mid-afternoon lands in between.
	if phases[0].Viewers != 1 {
		t.Fatalf("trough ran %d viewers, want 1", phases[0].Viewers)
	}
	if phases[2].Viewers != 8 {
		t.Fatalf("peak ran %d viewers, want 8", phases[2].Viewers)
	}
	if v := phases[1].Viewers; v <= 1 || v >= 8 {
		t.Fatalf("mid-ramp ran %d viewers, want strictly between 1 and 8", v)
	}
	for _, p := range phases {
		if p.Report.Errors != 0 {
			t.Fatalf("phase at hour %.0f: %d errors", p.Hour, p.Report.Errors)
		}
	}
}
