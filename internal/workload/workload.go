// Package workload models video-on-demand demand, following the literature
// the paper builds its motivation on (its refs [28][31][33]: VoD demand
// volatility, bandwidth auto-scaling, large-scale operational streaming):
//
//   - video popularity is Zipf-distributed — a few titles draw most views;
//   - session arrivals are Poisson within any short window;
//   - the arrival rate follows a diurnal wave with an evening peak.
//
// The experiment harness uses these generators to drive the site (E9b) and
// the auto-scaler (E11), and the tests verify the distributions' shapes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Zipf picks items 0..N-1 with P(rank k) ∝ 1/(k+1)^S — the canonical video
// popularity model (S near 0.8-1.0 in VoD measurement studies).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a popularity distribution over n items with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("workload: Zipf over %d items", n))
	}
	if s <= 0 {
		panic(fmt.Sprintf("workload: Zipf exponent %v", s))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Pick draws an item rank (0 = most popular).
func (z *Zipf) Pick(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// Interarrival draws an exponential inter-arrival time for a Poisson
// process with the given rate (events/second).
func Interarrival(rng *rand.Rand, ratePerSec float64) time.Duration {
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("workload: non-positive rate %v", ratePerSec))
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	secs := -math.Log(u) / ratePerSec
	return time.Duration(secs * float64(time.Second))
}

// Diurnal describes a 24-hour demand wave: rate(t) swings sinusoidally
// between Base and Base*PeakFactor, peaking at PeakHour. Bursts layer
// instantaneous flash crowds on top of the wave.
type Diurnal struct {
	// Base is the trough arrival rate (sessions/second).
	Base float64
	// PeakFactor is peak/trough (VoD studies report 3-10x).
	PeakFactor float64
	// PeakHour is the local hour of maximum demand (e.g. 21).
	PeakHour float64
	// Bursts are flash-crowd overlays: while raw t (not time-of-day) is
	// inside a burst window the diurnal rate is multiplied by its Factor.
	// Overlapping bursts compound. The step is instantaneous on both
	// edges — a viral link does not ramp.
	Bursts []Burst
}

// Burst is one flash-crowd window overlaid on the diurnal wave.
type Burst struct {
	// Start is the absolute offset at which the burst begins.
	Start time.Duration
	// Duration is how long the burst lasts.
	Duration time.Duration
	// Factor multiplies the diurnal rate inside the window (> 0;
	// typically 5-50 for a viral event).
	Factor float64
}

// Rate returns the arrival rate at time t. The sinusoidal component wraps
// every 24h; burst windows are matched against the raw offset, so a burst at
// Start=30h fires on day two, not every day.
func (d Diurnal) Rate(t time.Duration) float64 {
	if d.Base <= 0 || d.PeakFactor < 1 {
		panic(fmt.Sprintf("workload: bad diurnal %+v", d))
	}
	hours := math.Mod(t.Hours(), 24)
	phase := 2 * math.Pi * (hours - d.PeakHour) / 24
	// cos(phase)=1 at the peak hour, -1 twelve hours away.
	mid := (1 + d.PeakFactor) / 2
	amp := (d.PeakFactor - 1) / 2
	rate := d.Base * (mid + amp*math.Cos(phase))
	for _, b := range d.Bursts {
		if b.Factor <= 0 || b.Duration < 0 {
			panic(fmt.Sprintf("workload: bad burst %+v", b))
		}
		if t >= b.Start && t < b.Start+b.Duration {
			rate *= b.Factor
		}
	}
	return rate
}

// Session is one generated viewing session.
type Session struct {
	// Start is the virtual arrival time.
	Start time.Duration
	// Video is the popularity rank of the watched title.
	Video int
	// SeekFracs are time-bar positions the viewer drags to.
	SeekFracs []float64
	// WatchSeconds is how long the viewer stays.
	WatchSeconds int
}

// Generate produces the session arrivals of one window [from, to) under the
// diurnal wave, Zipf title choice, and viewer behaviour (0-2 seeks, watch
// time exponential around 120s). Deterministic for a given seed.
func Generate(z *Zipf, d Diurnal, from, to time.Duration, seed int64) []Session {
	rng := rand.New(rand.NewSource(seed))
	var out []Session
	t := from
	for {
		rate := d.Rate(t)
		t += Interarrival(rng, rate)
		if t >= to {
			return out
		}
		nSeeks := rng.Intn(3)
		seeks := make([]float64, nSeeks)
		for i := range seeks {
			seeks[i] = rng.Float64() * 0.95
		}
		watch := int(-math.Log(1-rng.Float64())*120) + 5
		out = append(out, Session{
			Start: t, Video: z.Pick(rng), SeekFracs: seeks, WatchSeconds: watch,
		})
	}
}
