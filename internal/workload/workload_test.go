package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestZipfShape(t *testing.T) {
	z := NewZipf(100, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Pick(rng)]++
	}
	// Top item ≈ 1/H(100) ≈ 19% of draws; top-10 well over half.
	if frac := float64(counts[0]) / draws; frac < 0.15 || frac > 0.25 {
		t.Fatalf("rank-0 frequency %.3f, want ~0.19", frac)
	}
	top10 := 0
	for _, c := range counts[:10] {
		top10 += c
	}
	if frac := float64(top10) / draws; frac < 0.5 {
		t.Fatalf("top-10 share %.3f, Zipf should be top-heavy", frac)
	}
	// Roughly monotone decreasing over decades.
	if counts[0] < counts[10] || counts[10] < counts[90] {
		t.Fatalf("not decreasing: %d, %d, %d", counts[0], counts[10], counts[90])
	}
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestZipfValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, 0) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestInterarrivalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rate = 5.0 // per second
	var sum time.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		sum += Interarrival(rng, rate)
	}
	mean := sum.Seconds() / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("mean interarrival %.4fs, want %.4fs", mean, 1/rate)
	}
}

func TestDiurnalWave(t *testing.T) {
	d := Diurnal{Base: 2, PeakFactor: 8, PeakHour: 21}
	peak := d.Rate(21 * time.Hour)
	trough := d.Rate(9 * time.Hour) // 12h from the peak
	if math.Abs(peak-16) > 0.01 {
		t.Fatalf("peak rate %.2f, want 16", peak)
	}
	if math.Abs(trough-2) > 0.01 {
		t.Fatalf("trough rate %.2f, want 2", trough)
	}
	// Wraps daily.
	if math.Abs(d.Rate(21*time.Hour)-d.Rate(45*time.Hour)) > 1e-9 {
		t.Fatal("no 24h periodicity")
	}
	// Always within [Base, Base*PeakFactor].
	for h := 0; h < 24; h++ {
		r := d.Rate(time.Duration(h) * time.Hour)
		if r < 2-1e-9 || r > 16+1e-9 {
			t.Fatalf("rate at %dh = %.2f out of bounds", h, r)
		}
	}
}

func TestGenerateSessions(t *testing.T) {
	z := NewZipf(50, 0.9)
	d := Diurnal{Base: 1, PeakFactor: 6, PeakHour: 20}
	evening := Generate(z, d, 19*time.Hour, 21*time.Hour, 7)
	morning := Generate(z, d, 3*time.Hour, 5*time.Hour, 7)
	if len(evening) == 0 || len(morning) == 0 {
		t.Fatal("no sessions generated")
	}
	// The evening window sees several times the morning's arrivals.
	if float64(len(evening)) < 2*float64(len(morning)) {
		t.Fatalf("evening %d vs morning %d sessions", len(evening), len(morning))
	}
	// Sessions are time-ordered, within the window, and well-formed.
	prev := 19 * time.Hour
	for _, s := range evening {
		if s.Start < prev || s.Start >= 21*time.Hour {
			t.Fatalf("session at %v out of order/window", s.Start)
		}
		prev = s.Start
		if s.Video < 0 || s.Video >= 50 || s.WatchSeconds < 5 {
			t.Fatalf("bad session %+v", s)
		}
		for _, f := range s.SeekFracs {
			if f < 0 || f >= 1 {
				t.Fatalf("seek %v out of range", f)
			}
		}
	}
	// Deterministic per seed.
	again := Generate(z, d, 19*time.Hour, 21*time.Hour, 7)
	if len(again) != len(evening) || again[0].Start != evening[0].Start {
		t.Fatal("generation not deterministic")
	}
}

// Property: Zipf Pick always returns a valid rank and lower ranks are (in
// aggregate over many draws) at least as popular as much higher ranks.
func TestPropertyZipfBounds(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%200) + 2
		z := NewZipf(n, 0.9)
		rng := rand.New(rand.NewSource(seed))
		q := n / 4
		if q < 1 {
			q = 1
		}
		lowHits, highHits := 0, 0
		for i := 0; i < 2000; i++ {
			k := z.Pick(rng)
			if k < 0 || k >= n {
				return false
			}
			if k < q {
				lowHits++
			}
			if k >= n-q {
				highHits++
			}
		}
		return lowHits > highHits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
