// Package videocloud is a from-scratch Go reproduction of "On Construction
// of Cloud IaaS Using KVM and OpenNebula for Video Services" (Yang et al.,
// ICPPW 2012): a private-cloud IaaS (simulated KVM hosts orchestrated by an
// OpenNebula-like engine with live migration), a Hadoop-like PaaS (HDFS +
// MapReduce behind a FUSE-style mount), and a complete video web service
// (upload, parallel FFmpeg-style conversion, Nutch-style search, seekable
// streaming) running on top.
//
// This package is the public facade. The quickest start:
//
//	vc, err := videocloud.New(videocloud.Config{})
//	if err != nil { ... }
//	http.ListenAndServe(":8080", vc.Handler())
//
// That boots four simulated hosts, deploys a NameNode VM, three DataNode
// VMs and a web-server VM as an orchestrated service group, builds HDFS and
// MapReduce over the data VMs, and serves the video site. See DESIGN.md for
// the architecture and EXPERIMENTS.md for the reproduced results; the
// examples/ directory contains runnable walkthroughs and cmd/ the CLIs.
package videocloud

import (
	"videocloud/internal/core"
	"videocloud/internal/experiments"
	"videocloud/internal/metrics"
	"videocloud/internal/migrate"
	"videocloud/internal/nebula"
	"videocloud/internal/stream"
	"videocloud/internal/video"
)

// Config sizes a full-stack deployment; the zero value reproduces the
// paper's small testbed (4 hosts, 3 data VMs, 1 web VM, HDFS RF 3).
type Config = core.Config

// System is the assembled stack: IaaS orchestrator, VM-hosted HDFS and
// MapReduce, and the video website.
type System = core.VideoCloud

// New boots a full System. It returns once every VM of the service group
// is Running and the site is serving.
func New(cfg Config) (*System, error) { return core.New(cfg) }

// ---- IaaS layer (use when only the cloud substrate is needed) ----

// IaaSOptions configures a standalone cloud (hypervisor driver, placement
// policy, network speeds).
type IaaSOptions = nebula.Options

// Template describes a VM to deploy.
type Template = nebula.Template

// NewIaaS creates a standalone OpenNebula-like cloud with no hosts; add
// hosts, register images, and submit templates against it.
func NewIaaS(opts IaaSOptions) *nebula.Cloud { return nebula.New(opts) }

// Placement policies for the Capacity Manager.
type (
	// PackingPolicy consolidates VMs onto the fewest hosts.
	PackingPolicy = nebula.PackingPolicy
	// StripingPolicy spreads VMs across all hosts.
	StripingPolicy = nebula.StripingPolicy
	// LoadAwarePolicy places on the least CPU-loaded host.
	LoadAwarePolicy = nebula.LoadAwarePolicy
)

// MigrationReport describes a finished live migration.
type MigrationReport = migrate.Report

// ---- media helpers ----

// MediaSpec describes a video encoding (codec, resolution, frame rate,
// GOP cadence, bitrate).
type MediaSpec = video.Spec

// Codec identifies a video codec ("mpeg4", "h264", "vp8", "theora").
type Codec = video.Codec

// Resolution is a frame size.
type Resolution = video.Resolution

// Standard resolutions; the paper's player serves R720p.
var (
	R360p  = video.R360p
	R480p  = video.R480p
	R720p  = video.R720p
	R1080p = video.R1080p
)

// GenerateVideo synthesizes a deterministic source media file, the stand-in
// for a user's camera upload.
func GenerateVideo(spec MediaSpec, durationSeconds int, seed uint64) ([]byte, error) {
	return video.Generate(spec, durationSeconds, seed)
}

// TranscodeFarm converts media in parallel across named worker nodes
// (Figure 16's split/convert/merge pipeline).
type TranscodeFarm = video.Farm

// Player is a headless streaming client with Range-based seeking.
type Player = stream.Player

// ---- experiments ----

// RunAllExperiments executes every reproduction experiment (E1-E10 plus
// ablations) and returns their result tables — what cmd/benchcloud prints
// and EXPERIMENTS.md records.
func RunAllExperiments() []*metrics.Table { return experiments.All() }
