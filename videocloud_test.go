package videocloud

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// The facade test exercises the public API exactly as README's quickstart
// does: boot, serve, and touch each exported helper.
func TestFacadeQuickstart(t *testing.T) {
	vc, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := vc.Status()
	if st.Hosts != 4 || len(st.VMs) != 5 {
		t.Fatalf("default deployment: %d hosts, %d VMs", st.Hosts, len(st.VMs))
	}
	srv := httptest.NewServer(vc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("home page status %d", resp.StatusCode)
	}
}

func TestFacadeMediaHelpers(t *testing.T) {
	spec := MediaSpec{Codec: "mpeg4", Res: R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000}
	data, err := GenerateVideo(spec, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty media")
	}
	farm := TranscodeFarm{Nodes: []string{"a", "b"}}
	res, err := farm.Convert(data, MediaSpec{Codec: "h264", Res: R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1 {
		t.Fatalf("speedup = %v", res.Speedup())
	}
}

func TestFacadeIaaS(t *testing.T) {
	cloud := NewIaaS(IaaSOptions{Policy: PackingPolicy{}})
	if _, err := cloud.AddHost("node1", 8, 1e9, 16<<30, 500<<30); err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.Catalog().Register("base", 1<<30, 1); err != nil {
		t.Fatal(err)
	}
	id, err := cloud.Submit(Template{
		Name: "vm", VCPUs: 1, MemoryBytes: 1 << 30, DiskBytes: 1 << 30, Image: "base",
	})
	if err != nil {
		t.Fatal(err)
	}
	cloud.WaitIdle()
	rec, err := cloud.VM(id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Name(), "vm") || rec.IP == "" {
		t.Fatalf("record = %+v", rec)
	}
}
